// Tests for the staged pipeline: FrameContext memoization, the stage
// decomposition, and the cached-vs-one-shot bit-identity contract.
#include <gtest/gtest.h>

#include "hebs/advanced/core.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/pipeline.h"
#include "hebs/advanced/util.h"

namespace hebs::pipeline {
namespace {

using hebs::image::UsidId;

const hebs::power::LcdSubsystemPower& model() {
  static const auto m = hebs::power::LcdSubsystemPower::lp064v1();
  return m;
}

void expect_same_result(const core::HebsResult& a, const core::HebsResult& b) {
  EXPECT_EQ(a.target.g_min, b.target.g_min);
  EXPECT_EQ(a.target.g_max, b.target.g_max);
  EXPECT_EQ(a.point.beta, b.point.beta);
  EXPECT_EQ(a.plc_mse, b.plc_mse);
  EXPECT_EQ(a.lambda.points(), b.lambda.points());
  EXPECT_EQ(a.phi.points(), b.phi.points());
  EXPECT_EQ(a.evaluation.distortion_percent, b.evaluation.distortion_percent);
  EXPECT_EQ(a.evaluation.saving_percent, b.evaluation.saving_percent);
  EXPECT_EQ(a.evaluation.transformed, b.evaluation.transformed);
}

TEST(SampleLevels, MatchesOperatorEvalExactly) {
  const auto img = hebs::image::make_usid(UsidId::kLena, 64);
  const auto r = core::hebs_at_range(img, 150, {}, model());
  for (const auto* curve : {&r.phi, &r.lambda}) {
    const auto samples = curve->sample_levels();
    for (int i = 0; i < hebs::transform::FloatLut::kSize; ++i) {
      const double x = static_cast<double>(i) / hebs::image::kMaxPixel;
      EXPECT_EQ(samples[i], (*curve)(x)) << "level " << i;
    }
  }
}

TEST(FrameContext, HistogramMatchesDirectComputation) {
  const auto img = hebs::image::make_usid(UsidId::kPeppers, 48);
  FrameContext ctx(img, {}, model());
  EXPECT_EQ(ctx.histogram(), hebs::histogram::Histogram::from_image(img));
  EXPECT_EQ(&ctx.histogram(), &ctx.exact_histogram());
}

TEST(FrameContext, AtRangeIsMemoized) {
  const auto img = hebs::image::make_usid(UsidId::kGirl, 48);
  FrameContext ctx(img, {}, model());
  const core::HebsResult& first = ctx.at_range(150);
  const core::HebsResult& second = ctx.at_range(150);
  EXPECT_EQ(&first, &second);
}

TEST(FrameContext, RangesClampingToSameTargetShareOneRun) {
  // A dark image whose brightest level caps g_max: every range beyond
  // the native maximum collapses onto the same target.
  hebs::image::GrayImage img(32, 32, 0);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      img(x, y) = static_cast<std::uint8_t>((x * 4) % 120);
    }
  }
  FrameContext ctx(img, {}, model());
  const core::HebsResult& a = ctx.at_range(200);
  const core::HebsResult& b = ctx.at_range(255);
  EXPECT_EQ(a.target.g_max, b.target.g_max);
  EXPECT_EQ(&a, &b);  // one pipeline run served both ranges
}

TEST(FrameContext, AtRangeMatchesFreeFunction) {
  const auto img = hebs::image::make_usid(UsidId::kBaboon, 48);
  core::HebsOptions opts;
  opts.segments = 6;
  FrameContext ctx(img, opts, model());
  for (int range : {60, 120, 200}) {
    expect_same_result(ctx.at_range(range),
                       core::hebs_at_range(img, range, opts, model()));
  }
}

TEST(FrameContext, EvaluateMatchesFreeFunction) {
  const auto img = hebs::image::make_usid(UsidId::kPout, 48);
  FrameContext ctx(img, {}, model());
  const auto r = ctx.at_range(140);
  const core::OperatingPoint point{r.lambda, 0.42};
  const auto cached = ctx.evaluate(point);
  const auto one_shot = core::evaluate_operating_point(img, point, model());
  EXPECT_EQ(cached.distortion_percent, one_shot.distortion_percent);
  EXPECT_EQ(cached.saving_percent, one_shot.saving_percent);
  EXPECT_EQ(cached.power.ccfl_watts, one_shot.power.ccfl_watts);
  EXPECT_EQ(cached.power.panel_watts, one_shot.power.panel_watts);
  EXPECT_EQ(cached.transformed, one_shot.transformed);
}

TEST(FrameContext, RebindClearsFrameCaches) {
  const auto a = hebs::image::make_usid(UsidId::kLena, 48);
  const auto b = hebs::image::make_usid(UsidId::kTrees, 48);
  FrameContext ctx(a, {}, model());
  const auto from_a = ctx.at_range(150).evaluation.distortion_percent;
  ctx.rebind(b);
  EXPECT_EQ(ctx.histogram(), hebs::histogram::Histogram::from_image(b));
  const auto from_b = ctx.at_range(150).evaluation.distortion_percent;
  EXPECT_EQ(from_b, core::hebs_at_range(b, 150, {}, model())
                        .evaluation.distortion_percent);
  EXPECT_NE(from_a, from_b);  // different frames, different measurements
}

TEST(FrameContext, UnboundContextThrows) {
  FrameContext ctx({}, model());
  EXPECT_FALSE(ctx.bound());
  EXPECT_THROW((void)ctx.histogram(), hebs::util::InvalidArgument);
  EXPECT_THROW((void)ctx.at_range(100), hebs::util::InvalidArgument);
}

TEST(FrameContext, HistogramEstimateDrivesStatsNotEvaluation) {
  const auto img = hebs::image::make_usid(UsidId::kSail, 48);
  FrameContext ctx(img, {}, model());

  // Inject a deliberately wrong estimate: all mass at one dark level.
  hebs::histogram::Histogram fake;
  fake.add(40, img.size());
  ctx.set_histogram_estimate(fake);
  EXPECT_TRUE(ctx.has_histogram_estimate());
  EXPECT_EQ(&ctx.histogram(), &ctx.histogram());
  EXPECT_EQ(ctx.histogram().max_level(), 40);
  // The exact histogram is untouched — evaluation still measures truth.
  EXPECT_EQ(ctx.exact_histogram(),
            hebs::histogram::Histogram::from_image(img));
  const auto& r = ctx.at_range(150);
  // The estimate caps g_max at its own brightest level.
  EXPECT_LE(r.target.g_max, 40);
}

TEST(Stages, ComposeToTheFrontEndResult) {
  const auto img = hebs::image::make_usid(UsidId::kElaine, 48);
  core::HebsOptions opts;
  opts.segments = 8;
  FrameContext ctx(img, opts, model());
  expect_same_result(run_stages_at_range(ctx, 130),
                     core::hebs_at_range(img, 130, opts, model()));
}

TEST(Stages, RunIndividuallyInOrder) {
  const auto img = hebs::image::make_usid(UsidId::kLena, 48);
  FrameContext ctx(img, {}, model());
  core::HebsResult result;

  const HistogramStage histogram_stage;
  EXPECT_STREQ(histogram_stage.name(), "histogram");
  histogram_stage.run(ctx, result);

  const RangeSelectStage range_stage(150);
  EXPECT_STREQ(range_stage.name(), "range-select");
  range_stage.run(ctx, result);
  EXPECT_EQ(result.target.range(), 150);

  const GheStage ghe_stage;
  EXPECT_STREQ(ghe_stage.name(), "ghe");
  ghe_stage.run(ctx, result);
  EXPECT_TRUE(result.phi.is_monotonic());
  EXPECT_GE(result.phi.segment_count(), 100);

  const PlcStage plc_stage;
  EXPECT_STREQ(plc_stage.name(), "plc");
  plc_stage.run(ctx, result);
  EXPECT_LE(result.lambda.segment_count(), ctx.options().segments);

  const EvaluateStage evaluate_stage;
  EXPECT_STREQ(evaluate_stage.name(), "evaluate");
  evaluate_stage.run(ctx, result);
  EXPECT_GT(result.point.beta, 0.0);
  EXPECT_GT(result.evaluation.saving_percent, 0.0);
}

TEST(Stages, RunExactMatchesHebsExact) {
  const auto img = hebs::image::make_usid(UsidId::kSplash, 48);
  FrameContext ctx(img, {}, model());
  expect_same_result(run_exact(ctx, 10.0),
                     core::hebs_exact(img, 10.0, {}, model()));
}

TEST(Stages, ValidateOptions) {
  const auto img = hebs::image::make_usid(UsidId::kLena, 48);
  core::HebsOptions bad;
  bad.segments = 0;
  FrameContext ctx(img, bad, model());
  EXPECT_THROW((void)ctx.at_range(100), hebs::util::InvalidArgument);
  EXPECT_THROW((void)select_target(ctx, 0), hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::pipeline
