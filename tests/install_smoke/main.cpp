// Exercises the installed stable facade end to end: registry listing,
// session creation, one gray8 frame, one strided RGB8 frame, and the
// typed error channel.  Exits nonzero on any unexpected outcome.
#include <cstdio>
#include <cstdint>
#include <vector>

#include <hebs/hebs.h>

int main() {
  std::printf("hebs API %s\n", hebs::kApiVersionString);
  for (const hebs::RegistryEntry& e : hebs::PolicyRegistry::entries()) {
    std::printf("policy %s\n", e.name.c_str());
  }

  auto session = hebs::Session::create(
      hebs::SessionConfig().policy("hebs-exact").metric("uiqi-hvs"));
  if (!session) {
    std::fprintf(stderr, "create: %s\n", session.status().to_string().c_str());
    return 1;
  }

  // A synthetic gradient frame, built by the consumer itself — the
  // stable facade needs no library image types.
  const int w = 64;
  const int h = 64;
  std::vector<std::uint8_t> gray(static_cast<std::size_t>(w) * h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      gray[static_cast<std::size_t>(y) * w + x] =
          static_cast<std::uint8_t>((x * 255) / (w - 1));
    }
  }
  auto result = session->process(
      {hebs::ImageView::gray8(gray.data(), w, h), 10.0});
  if (!result) {
    std::fprintf(stderr, "process: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  std::printf("gray8: beta %.3f distortion %.2f%% saving %.2f%%\n",
              result->beta, result->distortion_percent,
              result->saving_percent);

  // RGB8 with a padded stride.
  const int stride = 3 * w + 5;
  std::vector<std::uint8_t> rgb(static_cast<std::size_t>(stride) * h, 0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const std::uint8_t v = gray[static_cast<std::size_t>(y) * w + x];
      rgb[static_cast<std::size_t>(y) * stride + 3 * x + 0] = v;
      rgb[static_cast<std::size_t>(y) * stride + 3 * x + 1] = v;
      rgb[static_cast<std::size_t>(y) * stride + 3 * x + 2] = v;
    }
  }
  auto rgb_result = session->process(
      {hebs::ImageView::rgb8(rgb.data(), w, h, stride), 10.0});
  if (!rgb_result) {
    std::fprintf(stderr, "rgb process: %s\n",
                 rgb_result.status().to_string().c_str());
    return 1;
  }
  // Gray replicated into RGB has identical luma, so both paths must
  // agree exactly.
  if (rgb_result->beta != result->beta ||
      rgb_result->displayed.pixels() != result->displayed.pixels()) {
    std::fprintf(stderr, "rgb path diverged from gray path\n");
    return 1;
  }

  // The typed error channel.
  auto bad = session->process({hebs::ImageView(), 10.0});
  if (bad.has_value() ||
      bad.status().code() != hebs::StatusCode::kInvalidImage) {
    std::fprintf(stderr, "empty view was not rejected as invalid-image\n");
    return 1;
  }
  auto unknown = hebs::Session::create(hebs::SessionConfig().policy("nope"));
  if (unknown.has_value() ||
      unknown.status().code() != hebs::StatusCode::kUnknownPolicy) {
    std::fprintf(stderr, "unknown policy was not rejected\n");
    return 1;
  }

  std::printf("install smoke OK\n");
  return 0;
}
