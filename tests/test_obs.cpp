// The observability layer's contracts (DESIGN.md §13): deterministic
// counter values on known clips, span nesting well-formedness, trace
// JSON syntax, bit-identity of traced vs untraced runs, the typed
// kIoError on unwritable trace paths, and cross-thread counter
// coherence (this file is part of the TSan suite: every counter is a
// relaxed atomic, every tracer ring is claimed by exactly one thread).
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "hebs/advanced/core.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/obs.h"
#include "hebs/advanced/pipeline.h"
#include "hebs/hebs.h"
#include "util/error.h"

namespace {

using hebs::obs::CollectedSpan;
using hebs::obs::Counter;
using hebs::obs::Span;

const hebs::power::LcdSubsystemPower& model() {
  static const auto m = hebs::power::LcdSubsystemPower::lp064v1();
  return m;
}

std::vector<hebs::image::GrayImage> static_clip(int frames, int size) {
  return std::vector<hebs::image::GrayImage>(
      static_cast<std::size_t>(frames),
      hebs::image::make_usid(hebs::image::UsidId::kPout, size));
}

hebs::ImageView view_of(const hebs::image::GrayImage& img) {
  return hebs::ImageView::gray8(img.pixels().data(), img.width(),
                                img.height());
}

/// Guard restoring the process-global tracer to "off, empty" whatever a
/// test does (tests share the registry with the whole binary).
struct TracingGuard {
  ~TracingGuard() {
    hebs::obs::stop_tracing();
    hebs::obs::clear_trace();
  }
};

// ----------------------------------------------------------------------
// Counter registry
// ----------------------------------------------------------------------

TEST(ObsCounters, EveryCounterHasANameAndATextLine) {
  const auto snap = hebs::obs::snapshot_counters();
  const std::string text = hebs::obs::counters_text(snap);
  std::size_t lines = 0;
  for (std::size_t c = 0; c < hebs::obs::kCounterCount; ++c) {
    const char* name = hebs::obs::counter_name(static_cast<Counter>(c));
    ASSERT_NE(name, nullptr);
    EXPECT_NE(text.find(name), std::string::npos) << name;
    ++lines;
  }
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), '\n')),
            lines);
}

TEST(ObsCounters, DeltaSinceSubtractsTotalsButKeepsGauges) {
  hebs::obs::CounterSnapshot a;
  hebs::obs::CounterSnapshot b;
  a.values[static_cast<std::size_t>(Counter::kRangeProbes)] = 10;
  b.values[static_cast<std::size_t>(Counter::kRangeProbes)] = 25;
  a.values[static_cast<std::size_t>(Counter::kPoolBytesOutstanding)] = 4096;
  b.values[static_cast<std::size_t>(Counter::kPoolBytesOutstanding)] = 1024;
  const auto d = b.delta_since(a);
  EXPECT_EQ(d[Counter::kRangeProbes], 15u);
  // The gauge reports the level at the later snapshot, not a difference
  // (which could underflow when blocks were returned in between).
  EXPECT_EQ(d[Counter::kPoolBytesOutstanding], 1024u);
  EXPECT_TRUE(hebs::obs::counter_is_gauge(Counter::kPoolBytesOutstanding));
  EXPECT_FALSE(hebs::obs::counter_is_gauge(Counter::kRangeProbes));
}

// The documented temporal contract: a static clip of N frames takes the
// byte-identical fast path on every frame after the first.
TEST(ObsCounters, StaticClipCountsNMinusOneByteIdenticalReuses) {
  constexpr int kFrames = 8;
  const auto clip = static_clip(kFrames, 48);
  hebs::pipeline::FrameContext ctx(hebs::core::HebsOptions{}, model());
  hebs::pipeline::TemporalReuse reuse;
  const auto before = hebs::obs::snapshot_counters();
  for (const auto& frame : clip) (void)reuse.process(ctx, frame, 10.0);
  const auto d = hebs::obs::snapshot_counters().delta_since(before);
  EXPECT_EQ(d[Counter::kTemporalFrames], static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(d[Counter::kTemporalByteIdentical],
            static_cast<std::uint64_t>(kFrames - 1));
  EXPECT_EQ(d[Counter::kTemporalCold], 1u);
  EXPECT_EQ(d[Counter::kTemporalDeltaRefresh], 0u);
  // Exactly one full search ran (the cold head).
  EXPECT_EQ(d[Counter::kFramesDecided], 1u);
  EXPECT_GT(d[Counter::kRangeProbes], 0u);
}

// ----------------------------------------------------------------------
// Span tracer
// ----------------------------------------------------------------------

/// Spans on one thread must nest like a call stack: sorted by start
/// (ties: longer first), each span either contains or is disjoint from
/// every other.
void expect_well_nested(const std::vector<CollectedSpan>& spans) {
  std::vector<std::pair<std::uint32_t, std::int64_t>> stack;  // (tid, end)
  std::uint32_t tid = 0;
  std::vector<std::int64_t> ends;
  for (const CollectedSpan& s : spans) {
    if (ends.empty() || s.tid != tid) {
      tid = s.tid;
      ends.clear();
    }
    while (!ends.empty() && ends.back() <= s.start_ns) ends.pop_back();
    if (!ends.empty()) {
      EXPECT_LE(s.start_ns + s.dur_ns, ends.back())
          << "span " << hebs::obs::span_name(s.span)
          << " overlaps its enclosing span without nesting";
    }
    ends.push_back(s.start_ns + s.dur_ns);
  }
}

TEST(ObsTrace, DisabledByDefaultAndSpansAreWellNested) {
  TracingGuard guard;
  EXPECT_FALSE(hebs::obs::tracing_enabled());
  { hebs::obs::ScopedSpan untraced(Span::kFrame); }
  EXPECT_TRUE(hebs::obs::collect_trace().empty());

  constexpr int kFrames = 6;
  hebs::obs::start_tracing();
  EXPECT_TRUE(hebs::obs::tracing_enabled());
  hebs::core::VideoOptions vopts;
  vopts.num_threads = 1;
  hebs::core::VideoBacklightController controller(vopts, model());
  (void)controller.process_clip(static_clip(kFrames, 48));
  hebs::obs::stop_tracing();

  const auto spans = hebs::obs::collect_trace();
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(hebs::obs::dropped_spans(), 0u);
  std::size_t frames = 0;
  std::size_t reuse = 0;
  std::size_t byte_identical = 0;
  for (const CollectedSpan& s : spans) {
    EXPECT_GE(s.dur_ns, 0);
    if (s.span == Span::kFrame) ++frames;
    if (s.span == Span::kTemporalReuse) {
      ++reuse;
      if (s.arg == 2) ++byte_identical;
    }
  }
  EXPECT_EQ(frames, static_cast<std::size_t>(kFrames));
  EXPECT_EQ(reuse, static_cast<std::size_t>(kFrames));
  // The static clip's reuse levels are visible in the trace itself.
  EXPECT_EQ(byte_identical, static_cast<std::size_t>(kFrames - 1));
  expect_well_nested(spans);
}

TEST(ObsTrace, RingWrapDropsOldestAndCounts) {
  TracingGuard guard;
  hebs::obs::TraceOptions opts;
  opts.max_threads = 2;
  opts.events_per_thread = 16;
  hebs::obs::start_tracing(opts);
  for (int i = 0; i < 100; ++i) {
    hebs::obs::ScopedSpan span(Span::kRangeProbe, i);
  }
  hebs::obs::stop_tracing();
  const auto spans = hebs::obs::collect_trace();
  EXPECT_EQ(spans.size(), 16u);
  EXPECT_EQ(hebs::obs::dropped_spans(), 84u);
  // The ring keeps the newest events (a flight recorder, not a head
  // capture): args of the survivors are the last 16 of the 100.
  for (const CollectedSpan& s : spans) EXPECT_GE(s.arg, 84);
}

// ----------------------------------------------------------------------
// Chrome trace JSON
// ----------------------------------------------------------------------

/// A minimal JSON syntax checker (objects/arrays/strings/numbers/
/// literals, no semantics): enough to prove the exported trace is
/// parseable by a real consumer.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool parse() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    for (++pos_; pos_ < s_.size(); ++pos_) {
      if (s_[pos_] == '\\') {
        ++pos_;
      } else if (s_[pos_] == '"') {
        ++pos_;
        return true;
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool expect(char c) { return peek(c); }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::string temp_path(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

TEST(ObsTrace, ChromeTraceJsonParsesAndNamesEveryStage) {
  TracingGuard guard;
  hebs::obs::start_tracing();
  hebs::core::VideoOptions vopts;
  vopts.num_threads = 1;
  hebs::core::VideoBacklightController controller(vopts, model());
  (void)controller.process_clip(static_clip(4, 48));
  hebs::obs::stop_tracing();

  const std::string path = temp_path("hebs_test_trace.json");
  hebs::obs::write_chrome_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::remove(path.c_str());

  EXPECT_TRUE(JsonChecker(text).parse()) << "trace JSON does not parse";
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
  for (const Span s : {Span::kFrame, Span::kTemporalReuse,
                       Span::kRangeSearch, Span::kFlickerPost}) {
    EXPECT_NE(text.find(std::string("\"") + hebs::obs::span_name(s) + "\""),
              std::string::npos)
        << hebs::obs::span_name(s);
  }
}

TEST(ObsTrace, WriteToUnopenablePathThrowsIoError) {
  TracingGuard guard;
  hebs::obs::start_tracing();
  { hebs::obs::ScopedSpan span(Span::kFrame); }
  hebs::obs::stop_tracing();
  EXPECT_THROW(
      hebs::obs::write_chrome_trace("/nonexistent-dir-hebs/trace.json"),
      hebs::util::IoError);
}

// ----------------------------------------------------------------------
// Bit-identity: tracing must observe, never perturb
// ----------------------------------------------------------------------

TEST(ObsTrace, TracedRunIsBitIdenticalToUntraced) {
  TracingGuard guard;
  const auto clip = hebs::image::make_video_clip(10, 48);
  hebs::core::VideoOptions vopts;
  vopts.num_threads = 1;

  hebs::core::VideoBacklightController untraced(vopts, model());
  const auto want = untraced.process_clip(clip);

  hebs::obs::start_tracing();
  hebs::core::VideoBacklightController traced(vopts, model());
  const auto got = traced.process_clip(clip);
  hebs::obs::stop_tracing();

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].beta, want[i].beta) << i;
    EXPECT_EQ(got[i].raw_beta, want[i].raw_beta) << i;
    EXPECT_EQ(got[i].scene_cut, want[i].scene_cut) << i;
    EXPECT_EQ(got[i].evaluation.distortion_percent,
              want[i].evaluation.distortion_percent)
        << i;
    EXPECT_TRUE(got[i].evaluation.transformed ==
                want[i].evaluation.transformed)
        << i;
  }
}

// ----------------------------------------------------------------------
// Facade: Session::stats(), FrameBreakdown, trace plumbing
// ----------------------------------------------------------------------

TEST(ObsSession, UnwritableTracePathIsATypedIoError) {
  auto session = hebs::Session::create(
      hebs::SessionConfig().trace_path("/nonexistent-dir-hebs/trace.json"));
  ASSERT_FALSE(session.has_value());
  EXPECT_EQ(session.status().code(), hebs::StatusCode::kIoError);
  EXPECT_NE(session.status().message().find("trace path"),
            std::string::npos);
}

TEST(ObsSession, TracePathProducesAParseableTraceAtTeardown) {
  TracingGuard guard;
  const std::string path = temp_path("hebs_session_trace.json");
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kPout, 48);
  {
    auto session =
        hebs::Session::create(hebs::SessionConfig().trace_path(path));
    ASSERT_TRUE(session.has_value()) << session.status().to_string();
    auto result = session->process({view_of(img), 10.0});
    ASSERT_TRUE(result.has_value()) << result.status().to_string();
  }  // teardown writes the trace
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "no trace written to " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  EXPECT_TRUE(JsonChecker(buffer.str()).parse());
  EXPECT_NE(buffer.str().find("\"range-search\""), std::string::npos);
}

TEST(ObsSession, StatsCountFramesAndBreakdownFillsOnSingleFrames) {
  auto session = hebs::Session::create({});
  ASSERT_TRUE(session.has_value());
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kLena, 48);

  auto result = session->process({view_of(img), 10.0});
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->breakdown.collected);
  EXPECT_GT(result->breakdown.decide_ms, 0.0);
  EXPECT_GT(result->breakdown.range_probes, 0u);
  EXPECT_GT(result->breakdown.beta_probes, 0u);
  EXPECT_GT(result->breakdown.range_memo_misses, 0u);

  const auto stats = session->stats();
  EXPECT_EQ(stats.frames_decided, 1u);
  EXPECT_EQ(stats.range_probes, result->breakdown.range_probes);
  const std::string text = stats.to_text();
  EXPECT_NE(text.find("hebs_frames_decided_total 1\n"), std::string::npos);
  EXPECT_TRUE(JsonChecker("1").parse());  // sanity on the checker itself

  // Batch frames run concurrently; their results must say "not
  // collected" rather than carry meaningless attributions.
  auto batch =
      session->process_batch({view_of(img), view_of(img)}, 10.0);
  ASSERT_TRUE(batch.has_value());
  for (const auto& r : *batch) EXPECT_FALSE(r.breakdown.collected);
  EXPECT_EQ(session->stats().frames_decided, 3u);
}

// Cross-thread coherence: an 8-thread batch must count exactly one
// decided frame per image, with every increment arriving from a worker
// thread (TSan runs this file; relaxed atomics must come back clean).
TEST(ObsSession, CountersAreCoherentAcrossWorkerThreads) {
  constexpr std::size_t kImages = 16;
  auto session =
      hebs::Session::create(hebs::SessionConfig().threads(8));
  ASSERT_TRUE(session.has_value());
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kPeppers, 48);
  const std::vector<hebs::ImageView> frames(kImages, view_of(img));
  auto results = session->process_batch(frames, 10.0);
  ASSERT_TRUE(results.has_value());
  const auto stats = session->stats();
  EXPECT_EQ(stats.frames_decided, kImages);
  EXPECT_GE(stats.parallel_for_calls, 1u);
  EXPECT_GE(stats.parallel_for_items, kImages);
}

}  // namespace
