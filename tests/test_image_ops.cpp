// Tests for geometric image operations.
#include <gtest/gtest.h>

#include "hebs/advanced/image.h"
#include "hebs/advanced/util.h"

namespace hebs::image {
namespace {

GrayImage numbered(int w, int h) {
  GrayImage img(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      img(x, y) = static_cast<std::uint8_t>((y * w + x) % 256);
    }
  }
  return img;
}

TEST(Ops, CropExtractsTheRectangle) {
  const auto img = numbered(8, 8);
  const auto c = crop(img, 2, 3, 4, 2);
  EXPECT_EQ(c.width(), 4);
  EXPECT_EQ(c.height(), 2);
  EXPECT_EQ(c(0, 0), img(2, 3));
  EXPECT_EQ(c(3, 1), img(5, 4));
}

TEST(Ops, CropValidatesBounds) {
  const auto img = numbered(8, 8);
  EXPECT_THROW((void)crop(img, 6, 6, 4, 4), util::InvalidArgument);
  EXPECT_THROW((void)crop(img, -1, 0, 2, 2), util::InvalidArgument);
  EXPECT_THROW((void)crop(img, 0, 0, 0, 2), util::InvalidArgument);
}

TEST(Ops, FlipHorizontalMirrors) {
  const auto img = numbered(5, 3);
  const auto f = flip_horizontal(img);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 5; ++x) {
      EXPECT_EQ(f(x, y), img(4 - x, y));
    }
  }
  EXPECT_EQ(flip_horizontal(f), img);  // involution
}

TEST(Ops, FlipVerticalMirrors) {
  const auto img = numbered(4, 6);
  const auto f = flip_vertical(img);
  EXPECT_EQ(f(1, 0), img(1, 5));
  EXPECT_EQ(flip_vertical(f), img);
}

TEST(Ops, Rotate90SwapsDimensionsCorrectly) {
  const auto img = numbered(4, 2);
  const auto r = rotate90(img);
  EXPECT_EQ(r.width(), 2);
  EXPECT_EQ(r.height(), 4);
  // Top-left goes to top-right.
  EXPECT_EQ(r(1, 0), img(0, 0));
  // Four rotations are the identity.
  EXPECT_EQ(rotate90(rotate90(rotate90(r))), img);
}

TEST(Ops, ResizeIdentityWhenSameSize) {
  const auto img = make_usid(UsidId::kLena, 32);
  EXPECT_EQ(resize_bilinear(img, 32, 32), img);
}

TEST(Ops, ResizePreservesConstantImages) {
  const GrayImage img(16, 16, 77);
  const auto up = resize_bilinear(img, 33, 41);
  for (auto p : up.pixels()) EXPECT_EQ(p, 77);
}

TEST(Ops, ResizePreservesCornersAndMean) {
  const auto img = make_usid(UsidId::kGirl, 64);
  const auto small = resize_bilinear(img, 31, 33);
  EXPECT_EQ(small(0, 0), img(0, 0));
  EXPECT_EQ(small(30, 32), img(63, 63));
  EXPECT_NEAR(small.mean(), img.mean(), 4.0);
}

TEST(Ops, ResizeValidatesArguments) {
  const auto img = numbered(4, 4);
  EXPECT_THROW((void)resize_bilinear(img, 0, 4), util::InvalidArgument);
  GrayImage empty;
  EXPECT_THROW((void)resize_bilinear(empty, 4, 4),
               util::InvalidArgument);
  EXPECT_THROW((void)rotate90(empty), util::InvalidArgument);
  EXPECT_THROW((void)flip_horizontal(empty), util::InvalidArgument);
}

TEST(Ops, DownUpRoundTripStaysClose) {
  // Downsample 2x then upsample back: smooth content survives.
  GrayImage img(64, 64);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      img(x, y) = static_cast<std::uint8_t>((x + y) * 2);
    }
  }
  const auto down = resize_bilinear(img, 32, 32);
  const auto up = resize_bilinear(down, 64, 64);
  double max_err = 0;
  for (std::size_t i = 0; i < img.size(); ++i) {
    max_err = std::max(max_err,
                       std::abs(double(img.pixels()[i]) -
                                double(up.pixels()[i])));
  }
  EXPECT_LT(max_err, 6.0);
}

}  // namespace
}  // namespace hebs::image
