// Unit tests for drawing primitives and coherent noise.
#include <gtest/gtest.h>

#include "hebs/advanced/image.h"
#include "hebs/advanced/util.h"
#include "util/rng.h"

namespace hebs::image {
namespace {

TEST(Draw, ToPixelClampsAndRounds) {
  EXPECT_EQ(to_pixel(-0.1), 0);
  EXPECT_EQ(to_pixel(0.0), 0);
  EXPECT_EQ(to_pixel(1.0), 255);
  EXPECT_EQ(to_pixel(2.0), 255);
  EXPECT_EQ(to_pixel(0.5), 128);
}

TEST(Draw, FillRectRespectsBoundsAndClips) {
  GrayImage img(8, 8, 0);
  fill_rect(img, 2, 2, 4, 4, 1.0);
  EXPECT_EQ(img(2, 2), 255);
  EXPECT_EQ(img(3, 3), 255);
  EXPECT_EQ(img(4, 4), 0);  // exclusive upper bound
  EXPECT_EQ(img(1, 2), 0);
  // Clipping: huge rect must not crash and must fill everything.
  fill_rect(img, -10, -10, 100, 100, 0.5);
  EXPECT_EQ(img(0, 0), 128);
  EXPECT_EQ(img(7, 7), 128);
}

TEST(Draw, FillCircleCoversCenterNotCorners) {
  GrayImage img(21, 21, 0);
  fill_circle(img, 10, 10, 5, 1.0);
  EXPECT_EQ(img(10, 10), 255);
  EXPECT_EQ(img(10, 14), 255);  // within radius
  EXPECT_EQ(img(0, 0), 0);
  EXPECT_EQ(img(10, 16), 0);  // outside radius
}

TEST(Draw, GradientHEndpoints) {
  GrayImage img(11, 3);
  gradient_h(img, 0.0, 1.0);
  EXPECT_EQ(img(0, 1), 0);
  EXPECT_EQ(img(10, 1), 255);
  EXPECT_EQ(img(5, 1), 128);
}

TEST(Draw, GradientVEndpoints) {
  GrayImage img(3, 11);
  gradient_v(img, 1.0, 0.0);
  EXPECT_EQ(img(1, 0), 255);
  EXPECT_EQ(img(1, 10), 0);
}

TEST(Draw, RadialGradientCenterAndEdge) {
  GrayImage img(21, 21);
  gradient_radial(img, 10, 10, 10, 1.0, 0.0);
  EXPECT_EQ(img(10, 10), 255);
  EXPECT_EQ(img(10, 0), 0);  // at distance r
}

TEST(Draw, CheckerboardAlternates) {
  GrayImage img(8, 8);
  checkerboard(img, 2, 0.0, 1.0);
  EXPECT_EQ(img(0, 0), 0);
  EXPECT_EQ(img(2, 0), 255);
  EXPECT_EQ(img(0, 2), 255);
  EXPECT_EQ(img(2, 2), 0);
}

TEST(Draw, GaussianBlobAddsAtCenterOnly) {
  GrayImage img(33, 33, 0);
  add_gaussian_blob(img, 16, 16, 3.0, 0.5);
  EXPECT_NEAR(img(16, 16), 128, 2);
  EXPECT_EQ(img(0, 0), 0);  // outside 3-sigma support
}

TEST(Draw, NoiseIsDeterministicPerSeed) {
  GrayImage a(16, 16, 128);
  GrayImage b(16, 16, 128);
  util::Rng ra(5);
  util::Rng rb(5);
  add_gaussian_noise(a, 0.1, ra);
  add_gaussian_noise(b, 0.1, rb);
  EXPECT_EQ(a, b);
}

TEST(Draw, SaltPepperOnlyProducesExtremes) {
  GrayImage img(32, 32, 128);
  util::Rng rng(6);
  add_salt_pepper(img, 0.5, rng);
  int extremes = 0;
  for (auto p : img.pixels()) {
    EXPECT_TRUE(p == 0 || p == 128 || p == 255);
    if (p != 128) ++extremes;
  }
  EXPECT_GT(extremes, 300);  // roughly half of 1024
  EXPECT_LT(extremes, 700);
}

TEST(Draw, VignetteDarkensCornersKeepsCenter) {
  GrayImage img(33, 33, 200);
  vignette(img, 0.5);
  EXPECT_NEAR(img(16, 16), 200, 1);
  EXPECT_LT(img(0, 0), 120);
}

TEST(Draw, BoxBlurReducesVariance) {
  GrayImage img(32, 32);
  checkerboard(img, 1, 0.0, 1.0);
  const double var_before = [] (const GrayImage& i) {
    double m = i.mean();
    double acc = 0;
    for (auto p : i.pixels()) acc += (p - m) * (p - m);
    return acc / static_cast<double>(i.size());
  }(img);
  box_blur(img, 1, 1);
  double m = img.mean();
  double var_after = 0;
  for (auto p : img.pixels()) var_after += (p - m) * (p - m);
  var_after /= static_cast<double>(img.size());
  EXPECT_LT(var_after, var_before * 0.5);
}

TEST(Draw, BoxBlurPreservesConstantImage) {
  GrayImage img(16, 16, 90);
  box_blur(img, 2, 3);
  for (auto p : img.pixels()) EXPECT_EQ(p, 90);
}

TEST(Draw, StretchToRangeHitsTargets) {
  GrayImage img(4, 1);
  img(0, 0) = 50;
  img(1, 0) = 100;
  img(2, 0) = 150;
  img(3, 0) = 200;
  stretch_to_range(img, 0.0, 1.0);
  EXPECT_EQ(img(0, 0), 0);
  EXPECT_EQ(img(3, 0), 255);
}

TEST(Draw, StretchConstantImageIsNoop) {
  GrayImage img(4, 4, 99);
  stretch_to_range(img, 0.0, 1.0);
  for (auto p : img.pixels()) EXPECT_EQ(p, 99);
}

TEST(ValueNoise, OutputInUnitInterval) {
  const ValueNoise noise(42);
  for (double y = 0; y < 5; y += 0.37) {
    for (double x = 0; x < 5; x += 0.41) {
      const double v = noise.sample(x, y);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(ValueNoise, DeterministicPerSeedDistinctAcrossSeeds) {
  const ValueNoise a(1);
  const ValueNoise b(1);
  const ValueNoise c(2);
  EXPECT_DOUBLE_EQ(a.sample(1.3, 2.7), b.sample(1.3, 2.7));
  EXPECT_NE(a.sample(1.3, 2.7), c.sample(1.3, 2.7));
}

TEST(ValueNoise, IsContinuousAcrossLatticeCells) {
  const ValueNoise noise(7);
  // Values immediately left/right of a lattice line should be close.
  const double eps = 1e-6;
  const double left = noise.sample(2.0 - eps, 0.5);
  const double right = noise.sample(2.0 + eps, 0.5);
  EXPECT_NEAR(left, right, 1e-3);
}

TEST(ValueNoise, FbmStaysNormalized) {
  const ValueNoise noise(9);
  for (double x = 0; x < 3; x += 0.23) {
    const double v = noise.fbm(x, 1.0, 5);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(ValueNoise, FillFbmRespectsRange) {
  GrayImage img(32, 32);
  fill_fbm(img, 11, 8.0, 4, 0.25, 0.75);
  const auto mm = img.min_max();
  EXPECT_GE(mm.min, to_pixel(0.25) - 1);
  EXPECT_LE(mm.max, to_pixel(0.75) + 1);
}

TEST(ValueNoise, FillFbmValidatesArguments) {
  GrayImage img(8, 8);
  EXPECT_THROW(fill_fbm(img, 1, 0.0, 4, 0.0, 1.0), util::InvalidArgument);
  EXPECT_THROW(fill_fbm(img, 1, 8.0, 0, 0.0, 1.0), util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::image
