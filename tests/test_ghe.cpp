// Tests for the Global Histogram Equalization solver (Eqs. 4-7).
#include <gtest/gtest.h>

#include "hebs/advanced/core.h"
#include "hebs/advanced/histogram.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/util.h"

namespace hebs::core {
namespace {

using hebs::histogram::Histogram;
using hebs::image::UsidId;

Histogram random_histogram(std::uint64_t seed, int populated_levels = 64) {
  hebs::util::Rng rng(seed);
  Histogram h;
  for (int i = 0; i < populated_levels; ++i) {
    h.add(rng.uniform_int(0, 255),
          static_cast<std::uint64_t>(rng.uniform_int(1, 500)));
  }
  return h;
}

TEST(Ghe, OutputSpansExactlyTheTargetRange) {
  const auto img = hebs::image::make_usid(UsidId::kLena, 64);
  const auto hist = Histogram::from_image(img);
  const GheTarget target{0, 150};
  const auto lut = ghe_lut(hist, target);
  const auto out = lut.apply(img);
  EXPECT_EQ(out.min_max().min, 0);
  EXPECT_EQ(out.min_max().max, 150);
}

TEST(Ghe, RespectsNonZeroGmin) {
  const auto img = hebs::image::make_usid(UsidId::kPeppers, 64);
  const auto hist = Histogram::from_image(img);
  const GheTarget target{40, 180};
  const auto out = ghe_lut(hist, target).apply(img);
  EXPECT_EQ(out.min_max().min, 40);
  EXPECT_EQ(out.min_max().max, 180);
}

/// Property sweep: Φ is monotone for arbitrary random histograms.
class GheMonotone : public ::testing::TestWithParam<int> {};

TEST_P(GheMonotone, TransformIsMonotone) {
  const auto h = random_histogram(static_cast<std::uint64_t>(GetParam()));
  const auto phi = ghe_transform(h, GheTarget{0, 120});
  EXPECT_TRUE(phi.is_monotonic());
  EXPECT_TRUE(ghe_lut(h, GheTarget{0, 120}).is_monotonic());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GheMonotone, ::testing::Range(0, 20));

TEST(Ghe, UniformHistogramGetsLinearMap) {
  // An already-uniform histogram needs only linear compression.
  std::vector<std::uint64_t> counts(256, 10);
  const auto h = Histogram::from_counts(counts);
  const auto phi = ghe_transform(h, GheTarget{0, 255});
  for (double x = 0.05; x <= 1.0; x += 0.05) {
    EXPECT_NEAR(phi(x), x, 0.02) << "x=" << x;
  }
}

TEST(Ghe, EmptyLevelsProduceFlatBands) {
  // A bimodal histogram with a hole in the middle: the transform must be
  // flat across the hole (those levels hold no pixels).
  Histogram h;
  h.add(50, 100);
  h.add(200, 100);
  const auto phi = ghe_transform(h, GheTarget{0, 100});
  const double at_hole_start = phi(60.0 / 255.0);
  const double at_hole_end = phi(190.0 / 255.0);
  EXPECT_NEAR(at_hole_start, at_hole_end, 1e-9);
}

TEST(Ghe, EqualizesTowardUniform) {
  // The equalized histogram must be closer to uniform (EMD over the
  // target range) than a plain linear compression.
  const auto img = hebs::image::make_usid(UsidId::kPout, 64);
  const auto hist = Histogram::from_image(img);
  const GheTarget target{0, 200};

  const auto equalized =
      Histogram::from_image(ghe_lut(hist, target).apply(img));

  hebs::transform::Lut linear;
  for (int i = 0; i < 256; ++i) {
    linear[i] = static_cast<std::uint8_t>(i * 200 / 255);
  }
  const auto compressed = Histogram::from_image(linear.apply(img));

  // Reference uniform over [0, 200].
  std::vector<std::uint64_t> u(256, 0);
  for (int i = 0; i <= 200; ++i) {
    u[static_cast<std::size_t>(i)] = hist.total() / 201;
  }
  const auto uniform = Histogram::from_counts(u);

  EXPECT_LT(hebs::histogram::emd_distance(equalized, uniform),
            hebs::histogram::emd_distance(compressed, uniform));
}

TEST(Ghe, SingleLevelHistogramMapsToTop) {
  Histogram h;
  h.add(77, 1000);
  const auto phi = ghe_transform(h, GheTarget{0, 128});
  EXPECT_NEAR(phi(77.0 / 255.0), 128.0 / 255.0, 1e-9);
  EXPECT_TRUE(phi.is_monotonic());
}

TEST(Ghe, DarkestPopulatedLevelHitsGmin) {
  Histogram h;
  h.add(30, 10);
  h.add(100, 20);
  h.add(220, 30);
  const auto phi = ghe_transform(h, GheTarget{0, 100});
  EXPECT_NEAR(phi(30.0 / 255.0), 0.0, 1e-9);
  EXPECT_NEAR(phi(220.0 / 255.0), 100.0 / 255.0, 1e-9);
}

TEST(Ghe, MassWeightsTheSlope) {
  // 90% of pixels at a dark level: the transform must allocate most of
  // the output range right after that level.
  Histogram h;
  h.add(50, 900);
  h.add(60, 50);
  h.add(70, 50);
  const auto phi = ghe_transform(h, GheTarget{0, 200});
  const double jump_after_heavy = phi(60.0 / 255.0) - phi(50.0 / 255.0);
  const double jump_after_light = phi(70.0 / 255.0) - phi(60.0 / 255.0);
  EXPECT_GT(jump_after_heavy, 5.0 * jump_after_light);
}

TEST(Ghe, ValidatesArguments) {
  Histogram empty;
  EXPECT_THROW((void)ghe_transform(empty, GheTarget{0, 100}),
               hebs::util::InvalidArgument);
  const auto h = random_histogram(1);
  EXPECT_THROW((void)ghe_transform(h, GheTarget{100, 100}),
               hebs::util::InvalidArgument);
  EXPECT_THROW((void)ghe_transform(h, GheTarget{-1, 100}),
               hebs::util::InvalidArgument);
  EXPECT_THROW((void)ghe_transform(h, GheTarget{0, 256}),
               hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::core
