// Tests for the streaming/decimated histogram estimator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "hebs/advanced/histogram.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/util.h"

namespace hebs::histogram {
namespace {

using hebs::image::GrayImage;
using hebs::image::UsidId;

TEST(Streaming, ExactModeMatchesFullHistogram) {
  StreamingOptions opts;
  opts.decimation = 1;
  opts.blend = 1.0;
  StreamingHistogram est(opts);
  const auto img = hebs::image::make_usid(UsidId::kLena, 64);
  est.ingest(img);
  const auto exact = Histogram::from_image(img);
  EXPECT_LT(est.estimation_error(exact), 1e-9);
}

TEST(Streaming, EstimateScalesToFrameSize) {
  StreamingOptions opts;
  opts.decimation = 8;
  StreamingHistogram est(opts);
  const auto img = hebs::image::make_usid(UsidId::kGirl, 64);
  est.ingest(img);
  EXPECT_EQ(est.estimate().total(), img.size());
}

TEST(Streaming, DecimatedEstimateIsCloseOnOneFrame) {
  StreamingOptions opts;
  opts.decimation = 16;
  StreamingHistogram est(opts);
  const auto img = hebs::image::make_usid(UsidId::kPeppers, 96);
  est.ingest(img);
  // 9216 px / 16 = 576 samples over 256 bins (~2.25 per bin): the
  // sampling-noise floor puts L1 around 0.3; anything below 0.5 is far
  // from the ~2.0 worst case and good enough for range decisions.
  EXPECT_LT(est.estimation_error(Histogram::from_image(img)), 0.5);
}

TEST(Streaming, PhaseRotationConvergesOnStaticContent) {
  StreamingOptions opts;
  opts.decimation = 8;
  opts.blend = 0.2;
  StreamingHistogram est(opts);
  const auto img = hebs::image::make_usid(UsidId::kBaboon, 64);
  const auto exact = Histogram::from_image(img);
  est.ingest(img);
  const double first = est.estimation_error(exact);
  for (int f = 0; f < 24; ++f) est.ingest(img);
  const double settled = est.estimation_error(exact);
  EXPECT_LE(settled, first + 1e-12);
  EXPECT_LT(settled, 0.2);  // EMA noise floor for 512 samples/frame
}

TEST(Streaming, HigherDecimationIsNoisier) {
  const auto img = hebs::image::make_usid(UsidId::kTrees, 96);
  const auto exact = Histogram::from_image(img);
  StreamingOptions light;
  light.decimation = 4;
  StreamingOptions heavy;
  heavy.decimation = 64;
  StreamingHistogram est_light(light);
  StreamingHistogram est_heavy(heavy);
  est_light.ingest(img);
  est_heavy.ingest(img);
  EXPECT_LE(est_light.estimation_error(exact),
            est_heavy.estimation_error(exact) + 1e-12);
}

TEST(Streaming, BlendTracksSceneChanges) {
  StreamingOptions opts;
  opts.decimation = 4;
  opts.blend = 0.5;
  StreamingHistogram est(opts);
  const GrayImage bright(64, 64, 220);
  const GrayImage dark(64, 64, 30);
  for (int f = 0; f < 5; ++f) est.ingest(bright);
  for (int f = 0; f < 6; ++f) est.ingest(dark);
  // After several dark frames the estimate's mass sits at the dark end.
  EXPECT_GT(est.estimate().cdf(64), 0.9);
}

TEST(Streaming, ExactModeIsExactPerBinAcrossFrames) {
  // decimation = 1 samples every pixel, so each frame's contribution is
  // its exact histogram; with blend = 1 the estimate must reproduce the
  // newest frame's histogram bin for bin, whatever came before.
  StreamingOptions opts;
  opts.decimation = 1;
  opts.blend = 1.0;
  StreamingHistogram est(opts);
  for (UsidId id : {UsidId::kLena, UsidId::kBaboon, UsidId::kPeppers}) {
    const auto img = hebs::image::make_usid(id, 64);
    est.ingest(img);
    const auto exact = Histogram::from_image(img);
    const auto estimate = est.estimate();
    for (int bin = 0; bin < Histogram::kBins; ++bin) {
      ASSERT_EQ(estimate.count(bin), exact.count(bin)) << "bin " << bin;
    }
  }
}

TEST(Streaming, ExactModeStaysExactUnderFractionalBlend) {
  // Static content, decimation = 1, a blend whose binary representation
  // is inexact (0.3): the accumulated weights stay proportional to the
  // true counts, and largest-remainder rounding recovers them exactly.
  StreamingOptions opts;
  opts.decimation = 1;
  opts.blend = 0.3;
  StreamingHistogram est(opts);
  const auto img = hebs::image::make_usid(UsidId::kGirl, 64);
  const auto exact = Histogram::from_image(img);
  for (int f = 0; f < 5; ++f) est.ingest(img);
  EXPECT_LT(est.estimation_error(exact), 1e-9);
}

TEST(Streaming, EstimatorErrorBoundRegression) {
  // Regression bound for the one-frame decimated estimate: sampling m =
  // N/d pixels into 256 bins keeps the normalized L1 error below the
  // multinomial noise envelope 2*sqrt(kBins/m).  Decimations are capped
  // where the envelope stays below the trivial L1 maximum of 2, so
  // every case is a real constraint.  Checked across content.
  for (UsidId id : {UsidId::kLena, UsidId::kPeppers, UsidId::kTrees}) {
    const auto img = hebs::image::make_usid(id, 96);
    const auto exact = Histogram::from_image(img);
    for (int decimation : {2, 4, 16}) {
      StreamingOptions opts;
      opts.decimation = decimation;
      StreamingHistogram est(opts);
      est.ingest(img);
      const double m =
          static_cast<double>(img.size()) / static_cast<double>(decimation);
      const double bound =
          std::min(2.0, 2.0 * std::sqrt(Histogram::kBins / m));
      EXPECT_LE(est.estimation_error(exact), bound)
          << "decimation " << decimation;
    }
  }
}

TEST(Streaming, EmptyEstimatorReturnsEmptyHistogram) {
  const StreamingHistogram est;
  EXPECT_TRUE(est.estimate().empty());
  EXPECT_EQ(est.frames(), 0);
}

TEST(Streaming, ValidatesOptionsAndInput) {
  StreamingOptions bad;
  bad.decimation = 0;
  EXPECT_THROW(StreamingHistogram{bad}, hebs::util::InvalidArgument);
  StreamingOptions bad2;
  bad2.blend = 0.0;
  EXPECT_THROW(StreamingHistogram{bad2}, hebs::util::InvalidArgument);
  StreamingHistogram est;
  GrayImage empty;
  EXPECT_THROW(est.ingest(empty), hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::histogram
