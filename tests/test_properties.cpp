// Cross-module property sweeps: system-level invariants that must hold
// for every benchmark image and budget combination.
#include <gtest/gtest.h>

#include <cmath>

#include "hebs/advanced/core.h"
#include "hebs/advanced/display.h"
#include "hebs/advanced/image.h"
#include "quality/distortion.h"

namespace hebs {
namespace {

using image::UsidId;

const power::LcdSubsystemPower& model() {
  static const auto m = power::LcdSubsystemPower::lp064v1();
  return m;
}

/// Full-policy invariants over the album x budget grid.
class PolicyInvariants
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(PolicyInvariants, HoldForEveryImageAndBudget) {
  const auto [image_index, budget] = GetParam();
  const auto img = image::make_usid(
      image::kAllUsidIds[static_cast<std::size_t>(image_index)], 48);
  const core::HebsResult r = core::hebs_exact(img, budget, {}, model());

  // 1. The distortion budget is honored.
  EXPECT_LE(r.evaluation.distortion_percent, budget + 1e-9);
  // 2. The backlight factor is physical.
  EXPECT_GT(r.point.beta, 0.0);
  EXPECT_LE(r.point.beta, 1.0);
  // 3. The deployed transform is monotone (ladder-realizable) and within
  //    the segment budget.
  EXPECT_TRUE(r.lambda.is_monotonic());
  EXPECT_LE(r.lambda.segment_count(), 8);
  // 4. The exact transformation Φ is monotone and spans the target.
  EXPECT_TRUE(r.phi.is_monotonic());
  EXPECT_LE(r.phi.max_y() * 255.0, r.target.g_max + 1.0);
  // 5. Savings are consistent with the power numbers.
  const double recomputed =
      100.0 * (1.0 - r.evaluation.power.total() /
                         r.evaluation.reference_power.total());
  EXPECT_NEAR(r.evaluation.saving_percent, recomputed, 1e-9);
  // 6. The hardware ladder accepts the transform without error.
  display::HierarchicalLadder ladder;
  EXPECT_NO_THROW(ladder.program(r.lambda, r.point.beta));
  // 7. The realized transfer stays monotone after DAC quantization.
  EXPECT_TRUE(ladder.transfer().is_monotonic());
}

INSTANTIATE_TEST_SUITE_P(
    AlbumByBudget, PolicyInvariants,
    ::testing::Combine(::testing::Range(0, 19),
                       ::testing::Values(5.0, 20.0)));

/// The GHE + PLC construction preserves the histogram ordering: a level
/// with more cumulative mass below it never maps lower.
class OrderPreservation : public ::testing::TestWithParam<int> {};

TEST_P(OrderPreservation, TransformNeverSwapsGrayLevels) {
  const auto img = image::make_usid(
      image::kAllUsidIds[static_cast<std::size_t>(GetParam())], 48);
  const core::HebsResult r = core::hebs_at_range(img, 120, {}, model());
  const auto lut = r.lambda.to_lut();
  EXPECT_TRUE(lut.is_monotonic());
  // And the displayed image's histogram CDF order matches the source's.
  const auto out = lut.apply(img);
  EXPECT_LE(out.min_max().max, r.target.g_max + 1);
}

INSTANTIATE_TEST_SUITE_P(Album, OrderPreservation, ::testing::Range(0, 19));

TEST(Determinism, WholePipelineIsBitStable) {
  // Two complete runs from scratch must agree exactly — the property
  // that makes every benchmark in this repository reproducible.
  const auto img1 = image::make_usid(UsidId::kWest, 64);
  const auto img2 = image::make_usid(UsidId::kWest, 64);
  ASSERT_EQ(img1, img2);
  const auto r1 = core::hebs_exact(img1, 10.0, {}, model());
  const auto r2 = core::hebs_exact(img2, 10.0, {}, model());
  EXPECT_EQ(r1.point.beta, r2.point.beta);
  EXPECT_EQ(r1.target.g_max, r2.target.g_max);
  EXPECT_EQ(r1.evaluation.transformed, r2.evaluation.transformed);
  EXPECT_EQ(r1.evaluation.distortion_percent,
            r2.evaluation.distortion_percent);
}

TEST(Composability, TighterBudgetNeverDimsDeeper) {
  for (UsidId id : {UsidId::kLena, UsidId::kSail, UsidId::kHouseA}) {
    const auto img = image::make_usid(id, 48);
    const double beta_tight =
        core::hebs_exact(img, 3.0, {}, model()).point.beta;
    const double beta_loose =
        core::hebs_exact(img, 25.0, {}, model()).point.beta;
    EXPECT_LE(beta_loose, beta_tight + 1e-9) << image::usid_name(id);
  }
}

}  // namespace
}  // namespace hebs
