// Tests for the display hardware substrate: grayscale-voltage transfer,
// reference ladders (Fig. 5) and the panel luminance simulator.
#include <gtest/gtest.h>

#include "hebs/advanced/display.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/transform.h"
#include "hebs/advanced/util.h"

namespace hebs::display {
namespace {

TEST(GrayscaleVoltage, LinearLadderIsLinear) {
  const auto gv = GrayscaleVoltage::linear(11, 10.0);
  EXPECT_NEAR(gv.voltage(0), 0.0, 1e-12);
  EXPECT_NEAR(gv.voltage(255), 10.0, 1e-12);
  EXPECT_NEAR(gv.voltage(51), 2.0, 1e-9);  // 51/255 * 10 V
  EXPECT_NEAR(gv.transmittance(128), 128.0 / 255.0, 1e-9);
  EXPECT_TRUE(gv.is_monotonic());
}

TEST(GrayscaleVoltage, InterpolatesBetweenNodes) {
  // Two nodes: 0 V and 10 V; level 128 sits almost halfway.
  const GrayscaleVoltage gv({0.0, 10.0}, 10.0);
  EXPECT_NEAR(gv.voltage(128), 10.0 * 128 / 255.0, 1e-9);
}

TEST(GrayscaleVoltage, CurveIsNormalizedTransfer) {
  const auto gv = GrayscaleVoltage::linear(5, 8.0);
  const auto curve = gv.curve();
  EXPECT_NEAR(curve(0.0), 0.0, 1e-12);
  EXPECT_NEAR(curve(1.0), 1.0, 1e-12);
  EXPECT_NEAR(curve(0.5), 0.5, 1e-12);
}

TEST(GrayscaleVoltage, DetectsNonMonotoneNodes) {
  const GrayscaleVoltage gv({0.0, 5.0, 3.0, 10.0}, 10.0);
  EXPECT_FALSE(gv.is_monotonic());
}

TEST(GrayscaleVoltage, ValidatesNodes) {
  EXPECT_THROW(GrayscaleVoltage({0.0, 11.0}, 10.0),
               hebs::util::InvalidArgument);
  EXPECT_THROW(GrayscaleVoltage({-1.0, 5.0}, 10.0),
               hebs::util::InvalidArgument);
  EXPECT_THROW(GrayscaleVoltage({5.0}, 10.0), hebs::util::InvalidArgument);
  const auto gv = GrayscaleVoltage::linear();
  EXPECT_THROW((void)gv.voltage(-1), hebs::util::InvalidArgument);
  EXPECT_THROW((void)gv.voltage(256), hebs::util::InvalidArgument);
}

TEST(ConventionalLadder, DefaultTransferIsLinear) {
  const ConventionalLadder ladder;
  const auto gv = ladder.transfer();
  for (int level : {0, 64, 128, 192, 255}) {
    EXPECT_NEAR(gv.transmittance(level), level / 255.0, 1e-9);
  }
}

TEST(ConventionalLadder, ClampedTransferRealizesEq3) {
  // With many taps, the clamped ladder approximates the single-band
  // spreading curve closely.
  const ConventionalLadder ladder(101, 10.0);
  const auto gv = ladder.clamped_transfer(0.2, 0.8);
  const auto eq3 = hebs::transform::single_band_curve(0.2, 0.8);
  for (int level = 0; level <= 255; level += 5) {
    const double x = level / 255.0;
    EXPECT_NEAR(gv.transmittance(level), eq3(x), 0.02) << "level " << level;
  }
}

TEST(ConventionalLadder, ClampedTransferValidatesBand) {
  const ConventionalLadder ladder;
  EXPECT_THROW((void)ladder.clamped_transfer(0.8, 0.2),
               hebs::util::InvalidArgument);
}

TEST(HierarchicalLadder, DefaultIsIdentityTransfer) {
  const HierarchicalLadder ladder;
  const auto t = ladder.transfer();
  for (int level : {0, 100, 255}) {
    EXPECT_NEAR(t.transmittance(level), level / 255.0, 0.005);
  }
}

TEST(HierarchicalLadder, ProgramAppliesEq10) {
  // Program the identity transform at β = 0.5: node voltages must be
  // min(vdd, x/0.5 * vdd) — slope-2 spread with a clamp at half range.
  HierarchicalLadderOptions opts;
  opts.bands = 4;
  opts.dac_bits = 12;
  HierarchicalLadder ladder(opts);
  ladder.program(hebs::transform::PwlCurve::identity(), 0.5);
  const auto& nodes = ladder.node_voltages();
  ASSERT_EQ(nodes.size(), 5u);
  EXPECT_NEAR(nodes[0], 0.0, 0.01);
  EXPECT_NEAR(nodes[1], 5.0, 0.01);   // 0.25/0.5 * 10
  EXPECT_NEAR(nodes[2], 10.0, 0.01);  // clamped at vdd
  EXPECT_NEAR(nodes[3], 10.0, 0.01);
  EXPECT_NEAR(nodes[4], 10.0, 0.01);
}

TEST(HierarchicalLadder, EffectiveTransformUndoesTheSpread) {
  // effective(x) = β * v(x)/vdd must reproduce λ wherever no clipping.
  HierarchicalLadderOptions opts;
  opts.bands = 16;
  opts.dac_bits = 12;
  HierarchicalLadder ladder(opts);
  const hebs::transform::PwlCurve lambda(
      {{0.0, 0.0}, {0.5, 0.3}, {1.0, 0.6}});
  const double beta = 0.6;
  ladder.program(lambda, beta);
  const auto effective = ladder.effective_transform(beta);
  for (double x = 0.0; x <= 1.0; x += 0.125) {
    EXPECT_NEAR(effective(x), lambda(x), 0.02) << "x=" << x;
  }
}

/// Property sweep: for random monotone curves whose maximum stays below
/// β, the programmed ladder realizes the curve up to grid + DAC error.
class LadderRealization : public ::testing::TestWithParam<int> {};

TEST_P(LadderRealization, ProgramRealizesMonotoneCurves) {
  hebs::util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  // Build a random monotone 5-point curve with max y <= beta.
  const double beta = rng.uniform(0.4, 0.9);
  std::vector<hebs::transform::CurvePoint> pts;
  double y = 0.0;
  for (int i = 0; i < 5; ++i) {
    const double x = i / 4.0;
    y += rng.uniform(0.0, beta / 5.0);
    pts.push_back({x, std::min(y, beta)});
  }
  const hebs::transform::PwlCurve lambda(std::move(pts));

  HierarchicalLadderOptions opts;
  opts.bands = 32;
  opts.dac_bits = 10;
  HierarchicalLadder ladder(opts);
  ladder.program(lambda, beta);
  const auto effective = ladder.effective_transform(beta);
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    EXPECT_NEAR(effective(x), lambda(x), 0.03)
        << "seed " << GetParam() << " x " << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LadderRealization, ::testing::Range(0, 10));

TEST(HierarchicalLadder, RejectsNonMonotoneCurves) {
  HierarchicalLadder ladder;
  const hebs::transform::PwlCurve down({{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_THROW(ladder.program(down, 0.5), hebs::util::HardwareError);
}

TEST(HierarchicalLadder, DacQuantizationBoundsVoltageError) {
  HierarchicalLadderOptions opts;
  opts.bands = 8;
  opts.dac_bits = 6;
  HierarchicalLadder ladder(opts);
  const auto lambda = hebs::transform::PwlCurve(
      {{0.0, 0.0}, {1.0, 0.37}});  // awkward values for a 6-bit DAC
  ladder.program(lambda, 0.5);
  const double step = opts.vdd / 63.0;  // 2^6 - 1 codes
  for (std::size_t i = 0; i < ladder.node_voltages().size(); ++i) {
    const double x = static_cast<double>(i) / opts.bands;
    const double ideal = std::min(opts.vdd, lambda(x) / 0.5 * opts.vdd);
    EXPECT_NEAR(ladder.node_voltages()[i], ideal, step / 2.0 + 1e-9);
  }
}

TEST(HierarchicalLadder, ResetRestoresIdentity) {
  HierarchicalLadder ladder;
  ladder.program(hebs::transform::PwlCurve({{0.0, 0.0}, {1.0, 0.3}}), 0.4);
  ladder.reset();
  const auto t = ladder.transfer();
  EXPECT_NEAR(t.transmittance(255), 1.0, 1e-9);
  EXPECT_NEAR(t.transmittance(128), 128.0 / 255.0, 0.005);
}

TEST(HierarchicalLadder, ValidatesOptionsAndBeta) {
  HierarchicalLadderOptions bad;
  bad.bands = 0;
  EXPECT_THROW(HierarchicalLadder{bad}, hebs::util::InvalidArgument);
  HierarchicalLadder ladder;
  EXPECT_THROW(
      ladder.program(hebs::transform::PwlCurve::identity(), 0.0),
      hebs::util::InvalidArgument);
}

TEST(PanelSim, RenderMultipliesBacklightAndTransmittance) {
  const LcdPanel panel(GrayscaleVoltage::linear());
  hebs::image::GrayImage img(2, 1);
  img(0, 0) = 0;
  img(1, 0) = 255;
  const auto lum = panel.render(img, 0.6);
  EXPECT_NEAR(lum(0, 0), 0.0, 1e-9);
  EXPECT_NEAR(lum(1, 0), 0.6, 1e-9);
}

TEST(PanelSim, SoftwareRenderMatchesLutMath) {
  hebs::image::GrayImage img(1, 1, 100);
  hebs::transform::Lut lut;
  lut[100] = 200;
  const auto lum = software_render(img, lut, 0.5);
  EXPECT_NEAR(lum(0, 0), 0.5 * 200.0 / 255.0, 1e-12);
}

TEST(PanelSim, ReferenceRenderIsNormalizedOriginal) {
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kPears, 32);
  const auto lum = reference_render(img);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      EXPECT_NEAR(lum(x, y), img(x, y) / 255.0, 1e-12);
    }
  }
}

TEST(PanelSim, ValidatesBacklightRange) {
  const LcdPanel panel(GrayscaleVoltage::linear());
  const hebs::image::GrayImage img(8, 8, 0);
  EXPECT_THROW((void)panel.render(img, -0.1), hebs::util::InvalidArgument);
  EXPECT_THROW((void)panel.render(img, 1.1), hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::display
