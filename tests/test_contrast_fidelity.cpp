// Tests for the contrast-fidelity measure (ref [5]'s distortion).
#include <gtest/gtest.h>

#include "hebs/advanced/image.h"
#include "hebs/advanced/quality.h"
#include "hebs/advanced/transform.h"
#include "hebs/advanced/util.h"

namespace hebs::quality {
namespace {

using hebs::image::GrayImage;
using hebs::image::UsidId;

TEST(ContrastFidelity, IdenticalImagesHaveFullFidelity) {
  const auto img = hebs::image::make_usid(UsidId::kLena, 64);
  EXPECT_NEAR(contrast_fidelity(img, img), 1.0, 1e-12);
  EXPECT_NEAR(contrast_distortion_percent(img, img), 0.0, 1e-9);
}

TEST(ContrastFidelity, BrightnessShiftIsForgiven) {
  // The defining property (and the flaw the paper criticizes in §2):
  // a uniform brightness shift keeps all window contrast, so fidelity
  // stays 1 even though the image looks different.
  const auto img = hebs::image::make_usid(UsidId::kGirl, 64);
  GrayImage shifted = img;
  for (auto& p : shifted.pixels()) {
    p = static_cast<std::uint8_t>(std::min(255, p + 25));
  }
  EXPECT_GT(contrast_fidelity(img, shifted), 0.97);
}

TEST(ContrastFidelity, ContrastCompressionLosesFidelity) {
  const auto img = hebs::image::make_usid(UsidId::kBaboon, 64);
  GrayImage compressed = img;
  const double mean = img.mean();
  for (auto& p : compressed.pixels()) {
    p = static_cast<std::uint8_t>(
        std::clamp(mean + 0.4 * (p - mean), 0.0, 255.0));
  }
  const double f = contrast_fidelity(img, compressed);
  EXPECT_LT(f, 0.6);
  EXPECT_GT(f, 0.2);
}

TEST(ContrastFidelity, AmplificationDoesNotScoreAboveOne) {
  const auto img = hebs::image::make_usid(UsidId::kPout, 64);
  GrayImage stretched = img;
  hebs::image::stretch_to_range(stretched, 0.0, 1.0);
  const double f = contrast_fidelity(img, stretched);
  EXPECT_LE(f, 1.0 + 1e-12);
  EXPECT_GT(f, 0.9);  // all original contrast survives
}

TEST(ContrastFidelity, ClippingDestroysBandContrast) {
  // A band clip (eq. 3 with a narrow band) flattens out-of-band regions.
  const auto img = hebs::image::make_usid(UsidId::kTestpat, 64);
  const auto lut = hebs::transform::single_band_curve(0.4, 0.6).to_lut();
  const double f = contrast_fidelity(img, lut.apply(img));
  // Out-of-band regions flatten; in-band contrast is amplified (no extra
  // credit), so fidelity drops well below the brightness-shift case.
  EXPECT_LT(f, 0.92);
  EXPECT_GT(f, 0.3);
}

TEST(ContrastFidelity, FlatOriginalHasNothingToLose) {
  const GrayImage flat(16, 16, 100);
  const GrayImage other(16, 16, 30);
  EXPECT_DOUBLE_EQ(contrast_fidelity(flat, other), 1.0);
}

TEST(ContrastFidelity, MetricEnumIntegration) {
  const auto img = hebs::image::make_usid(UsidId::kTrees, 64);
  GrayImage shifted = img;
  for (auto& p : shifted.pixels()) {
    p = static_cast<std::uint8_t>(std::min(255, p + 30));
  }
  DistortionOptions cf;
  cf.metric = Metric::kContrastFidelity;
  DistortionOptions uiqi;
  uiqi.metric = Metric::kUiqiHvs;
  // §2's criticism quantified: the contrast measure calls the shifted
  // image nearly perfect while the perceptual metric sees a clearly
  // larger error.
  const double d_cf = distortion_percent(img, shifted, cf);
  const double d_uiqi = distortion_percent(img, shifted, uiqi);
  EXPECT_LT(d_cf, 1.0);
  EXPECT_GT(d_uiqi, 3.0 * d_cf);
  EXPECT_STREQ(metric_name(Metric::kContrastFidelity), "ContrastFidelity");
}

TEST(ContrastFidelity, ValidatesArguments) {
  const GrayImage a(16, 16, 0);
  const GrayImage b(8, 8, 0);
  EXPECT_THROW((void)contrast_fidelity(a, b),
               hebs::util::InvalidArgument);
  ContrastFidelityOptions bad;
  bad.block_size = 1;
  EXPECT_THROW((void)contrast_fidelity(a, a, bad),
               hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::quality
