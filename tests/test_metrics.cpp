// Tests for pixelwise metrics and the DLS saturation measure.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "hebs/advanced/quality.h"
#include "hebs/advanced/transform.h"
#include "transform/lut.h"
#include "hebs/advanced/util.h"

namespace hebs::quality {
namespace {

using hebs::image::GrayImage;

TEST(Metrics, MseOfKnownImages) {
  GrayImage a(2, 1);
  GrayImage b(2, 1);
  a(0, 0) = 0;
  a(1, 0) = 10;
  b(0, 0) = 3;
  b(1, 0) = 6;
  EXPECT_DOUBLE_EQ(mse(a, b), (9.0 + 16.0) / 2.0);
  EXPECT_DOUBLE_EQ(rmse(a, b), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(mae(a, b), 3.5);
}

TEST(Metrics, IdenticalImagesHaveZeroErrorInfinitePsnr) {
  const GrayImage a(4, 4, 123);
  EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
  EXPECT_EQ(psnr(a, a), std::numeric_limits<double>::infinity());
}

TEST(Metrics, PsnrOfUnitErrorIsKnownValue) {
  GrayImage a(1, 1, 100);
  GrayImage b(1, 1, 101);
  // PSNR = 10 log10(255^2 / 1) ≈ 48.13 dB.
  EXPECT_NEAR(psnr(a, b), 48.1308, 1e-3);
}

TEST(Metrics, FloatMseMatchesGray) {
  GrayImage a(2, 1);
  GrayImage b(2, 1);
  a(0, 0) = 0;
  a(1, 0) = 255;
  b(0, 0) = 255;
  b(1, 0) = 255;
  const double m8 = mse(a, b);             // (255² + 0)/2
  const double mf = mse(hebs::image::FloatImage::from_gray(a),
                        hebs::image::FloatImage::from_gray(b));
  EXPECT_NEAR(mf * 255.0 * 255.0, m8, 1e-9);
}

TEST(Metrics, SizeMismatchThrows) {
  const GrayImage a(2, 2, 0);
  const GrayImage b(3, 2, 0);
  EXPECT_THROW((void)mse(a, b), hebs::util::InvalidArgument);
  EXPECT_THROW((void)mae(a, b), hebs::util::InvalidArgument);
}

TEST(Metrics, SaturatedFractionOfIdentityIsZero) {
  GrayImage img(4, 4, 128);
  EXPECT_DOUBLE_EQ(saturated_fraction(img, hebs::transform::Lut()), 0.0);
}

TEST(Metrics, SaturatedFractionCountsClippedPixels) {
  // Contrast-stretch with beta = 0.5 saturates every pixel above 127.
  GrayImage img(2, 1);
  img(0, 0) = 100;   // 100/0.5 = 200 -> not saturated
  img(1, 0) = 200;   // 200/0.5 -> clipped to 255
  const auto lut =
      hebs::transform::contrast_stretch_curve(0.5).to_lut();
  EXPECT_DOUBLE_EQ(saturated_fraction(img, lut), 0.5);
}

TEST(Metrics, AlreadyExtremePixelsDoNotCountAsSaturated) {
  GrayImage img(2, 1);
  img(0, 0) = 255;  // already white: mapping to 255 is lossless
  img(1, 0) = 0;    // already black
  const auto lut =
      hebs::transform::contrast_stretch_curve(0.5).to_lut();
  EXPECT_DOUBLE_EQ(saturated_fraction(img, lut), 0.0);
}

}  // namespace
}  // namespace hebs::quality
