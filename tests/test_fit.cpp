// Tests for the regression/curve-fitting substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "hebs/advanced/fit.h"
#include "hebs/advanced/util.h"

namespace hebs::fit {
namespace {

TEST(Poly, EvaluatesWithHorner) {
  const Poly p{{1.0, 2.0, 3.0}};  // 1 + 2x + 3x^2
  EXPECT_DOUBLE_EQ(p(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p(1.0), 6.0);
  EXPECT_DOUBLE_EQ(p(2.0), 17.0);
  EXPECT_EQ(p.degree(), 2);
}

TEST(Poly, DerivativeCoefficients) {
  const Poly p{{1.0, 2.0, 3.0}};
  const Poly d = p.derivative();
  ASSERT_EQ(d.coeffs.size(), 2u);
  EXPECT_DOUBLE_EQ(d.coeffs[0], 2.0);
  EXPECT_DOUBLE_EQ(d.coeffs[1], 6.0);
  const Poly c{{5.0}};
  EXPECT_DOUBLE_EQ(c.derivative()(3.0), 0.0);
}

TEST(LinearSolve, SolvesKnownSystem) {
  // [2 1; 1 3] x = [5; 10]  ->  x = [1; 3]
  const auto x = solve_linear_system({2, 1, 1, 3}, {5, 10});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinearSolve, PivotsOnZeroDiagonal) {
  // [0 1; 1 0] x = [2; 3] requires a row swap.
  const auto x = solve_linear_system({0, 1, 1, 0}, {2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LinearSolve, SingularMatrixThrows) {
  EXPECT_THROW(solve_linear_system({1, 2, 2, 4}, {1, 2}),
               util::InvalidArgument);
}

TEST(LinearSolve, SizeMismatchThrows) {
  EXPECT_THROW(solve_linear_system({1, 2, 3}, {1, 2}),
               util::InvalidArgument);
}

/// Property sweep: polyfit recovers exact polynomials of every degree.
class PolyfitRecovery : public ::testing::TestWithParam<int> {};

TEST_P(PolyfitRecovery, RecoversExactPolynomial) {
  const int degree = GetParam();
  util::Rng rng(100 + static_cast<std::uint64_t>(degree));
  Poly truth;
  for (int i = 0; i <= degree; ++i) {
    truth.coeffs.push_back(rng.uniform(-2.0, 2.0));
  }
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = -1.0; x <= 1.0; x += 0.1) {
    xs.push_back(x);
    ys.push_back(truth(x));
  }
  const Poly fitted = polyfit(xs, ys, degree);
  for (double x = -1.0; x <= 1.0; x += 0.05) {
    EXPECT_NEAR(fitted(x), truth(x), 1e-8) << "degree " << degree;
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, PolyfitRecovery,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(Polyfit, RequiresEnoughSamples) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0, 2.0};
  EXPECT_THROW(polyfit(xs, ys, 2), util::InvalidArgument);
  EXPECT_THROW(polyfit(xs, ys, -1), util::InvalidArgument);
}

TEST(FitLine, PerfectLineHasUnitRSquared) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys = {1.0, 3.0, 5.0, 7.0};
  const LineFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(FitLine, NoisyLineRecoversApproximately) {
  util::Rng rng(5);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    const double x = i / 200.0;
    xs.push_back(x);
    ys.push_back(3.0 * x - 0.5 + rng.gaussian(0.0, 0.01));
  }
  const LineFit f = fit_line(xs, ys);
  EXPECT_NEAR(f.slope, 3.0, 0.05);
  EXPECT_NEAR(f.intercept, -0.5, 0.05);
  EXPECT_GT(f.r_squared, 0.99);
}

TEST(FitLine, VerticalStackFallsBackToMean) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  const LineFit f = fit_line(xs, ys);
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.intercept, 2.0);
}

TEST(TwoPiece, RecoversKnownBreakpoint) {
  // y = x for x <= 0.6, y = 5x - 2.4 after (continuous at 0.6).
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 0.0; x <= 1.0001; x += 0.02) {
    xs.push_back(x);
    ys.push_back(x <= 0.6 ? x : 5.0 * x - 2.4);
  }
  const TwoPieceLinear f = fit_two_piece(xs, ys);
  EXPECT_NEAR(f.breakpoint, 0.6, 0.03);
  EXPECT_NEAR(f.lo.slope, 1.0, 0.02);
  EXPECT_NEAR(f.hi.slope, 5.0, 0.02);
  EXPECT_LT(f.sse, 1e-10);
}

TEST(TwoPiece, EvaluatesPieceBySide) {
  TwoPieceLinear f;
  f.breakpoint = 0.5;
  f.lo = {1.0, 0.0, 1.0};
  f.hi = {2.0, -0.5, 1.0};
  EXPECT_DOUBLE_EQ(f(0.25), 0.25);
  EXPECT_DOUBLE_EQ(f(0.75), 1.0);
}

TEST(TwoPiece, ValidatesInput) {
  std::vector<double> xs = {0.0, 1.0, 2.0};
  std::vector<double> ys = {0.0, 1.0, 2.0};
  EXPECT_THROW(fit_two_piece(xs, ys), util::InvalidArgument);
  std::vector<double> unsorted = {0.0, 2.0, 1.0, 3.0, 4.0, 5.0};
  std::vector<double> y6 = {0, 1, 2, 3, 4, 5};
  EXPECT_THROW(fit_two_piece(unsorted, y6), util::InvalidArgument);
}

TEST(RSquared, PerfectAndFlatModels) {
  const std::vector<double> xs = {0.0, 1.0, 2.0};
  const std::vector<double> ys = {0.0, 1.0, 2.0};
  EXPECT_NEAR(r_squared(xs, ys, [](double x) { return x; }), 1.0, 1e-12);
  EXPECT_NEAR(r_squared(xs, ys, [](double) { return 1.0; }), 0.0, 1e-12);
}

TEST(UpperEnvelope, StaysAboveBucketMaxima) {
  util::Rng rng(9);
  std::vector<double> xs;
  std::vector<double> ys;
  // Scatter under the parabola y = 10 - (x-5)^2/5 with random depression.
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    const double top = 10.0 - (x - 5.0) * (x - 5.0) / 5.0;
    xs.push_back(x);
    ys.push_back(top - rng.uniform(0.0, 4.0));
  }
  const Poly env = fit_upper_envelope(xs, ys, 2, 10);
  const Poly avg = polyfit(xs, ys, 2);
  // The envelope must sit clearly above the average fit mid-domain.
  for (double x = 2.0; x <= 8.0; x += 0.5) {
    EXPECT_GT(env(x), avg(x));
  }
}

TEST(UpperEnvelope, ValidatesArguments) {
  std::vector<double> xs = {1.0, 2.0};
  std::vector<double> ys = {1.0, 2.0};
  EXPECT_THROW(fit_upper_envelope(xs, ys, 2, 2), util::InvalidArgument);
}

TEST(InvertMonotone, IncreasingFunction) {
  const auto f = [](double x) { return x * x; };
  EXPECT_NEAR(invert_monotone(f, 4.0, 0.0, 10.0), 2.0, 1e-9);
}

TEST(InvertMonotone, DecreasingFunction) {
  const auto f = [](double x) { return 10.0 - x; };
  EXPECT_NEAR(invert_monotone(f, 3.0, 0.0, 10.0), 7.0, 1e-9);
}

TEST(InvertMonotone, ClampsOutOfRangeTargets) {
  const auto f = [](double x) { return x; };
  EXPECT_DOUBLE_EQ(invert_monotone(f, -5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(invert_monotone(f, 5.0, 0.0, 1.0), 1.0);
}

}  // namespace
}  // namespace hebs::fit
