// Fuzz coverage for the restructured cold decision path.
//
// The coarse-to-fine search (HebsOptions::coarse_search, default on)
// carries a two-tier contract (DESIGN.md §11).  On the paper's domain
// -- the benchmark album and the degenerate frame classes, where the
// measured distortion is weakly monotone in range and beta -- it is
// bit-identical to the frozen cold bisection (coarse_search = false):
// same target range, same beta, same curves, same transformed raster.
// On arbitrary frames, where monotonicity can fail and the bisection
// answer itself is probe-order-dependent, it still only ever adopts a
// measured, endpoint-verified within-budget operating point.  These
// tests pin tier one exactly (album x budgets x min_range, flats,
// tiny rasters, thread counts) and tier two on adversarial seeds.
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "hebs/advanced/core.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/pipeline.h"
#include "pipeline/frame_context.h"
#include "util/rng.h"

namespace hebs::pipeline {
namespace {

const hebs::power::LcdSubsystemPower& model() {
  static const auto m = hebs::power::LcdSubsystemPower::lp064v1();
  return m;
}

void expect_bit_identical(const core::HebsResult& a, const core::HebsResult& b,
                          const std::string& what) {
  EXPECT_EQ(a.target.g_min, b.target.g_min) << what;
  EXPECT_EQ(a.target.g_max, b.target.g_max) << what;
  EXPECT_EQ(a.point.beta, b.point.beta) << what;
  EXPECT_EQ(a.plc_mse, b.plc_mse) << what;
  EXPECT_EQ(a.phi.points(), b.phi.points()) << what;
  EXPECT_EQ(a.lambda.points(), b.lambda.points()) << what;
  EXPECT_EQ(a.evaluation.distortion_percent, b.evaluation.distortion_percent)
      << what;
  EXPECT_EQ(a.evaluation.saving_percent, b.evaluation.saving_percent) << what;
  EXPECT_EQ(a.evaluation.power.total(), b.evaluation.power.total()) << what;
  EXPECT_EQ(a.evaluation.transformed, b.evaluation.transformed) << what;
}

core::HebsResult run_once(const hebs::image::GrayImage& img,
                          core::HebsOptions opts, bool coarse, double budget) {
  opts.coarse_search = coarse;
  FrameContext ctx(img, opts, model());
  core::HebsResult result = run_exact(ctx, budget);
  ctx.materialize_transformed(result);
  return result;
}

void expect_search_parity(const hebs::image::GrayImage& img,
                          const core::HebsOptions& opts, double budget,
                          const std::string& what) {
  expect_bit_identical(run_once(img, opts, true, budget),
                       run_once(img, opts, false, budget), what);
}

TEST(DecisionPath, AlbumBudgetMinRangeMatrix) {
  const auto album = hebs::image::usid_album(64);
  for (const double budget : {0.5, 2.0, 5.0, 10.0, 30.0}) {
    for (const int min_range : {2, 16, 64}) {
      core::HebsOptions opts;
      opts.min_range = min_range;
      for (const auto& [name, img] : album) {
        expect_search_parity(img, opts, budget,
                             name + " budget=" + std::to_string(budget) +
                                 " min_range=" + std::to_string(min_range));
      }
    }
  }
}

TEST(DecisionPath, SeedFuzzedFramesHonorTheBudgetContract) {
  // Random frames with deliberately ugly histograms: noise fields,
  // noisy gradients, sparse impulse spikes, blocky rectangles.  On
  // such frames the measured distortion is NOT monotone in range or
  // beta (UIQI windows straddling impulse edges can improve under
  // deeper compression), so "the" bisection answer is ill-defined:
  // the frozen cold search and the coarse search may converge to
  // different verified crossings, and bit-identity is only promised
  // on the paper's domain (the album matrix above; DESIGN.md §11).
  // What the coarse path guarantees UNCONDITIONALLY -- every probe is
  // a full-resolution measurement and adoption requires verified
  // bracket endpoints -- is pinned here instead: whenever the frozen
  // search finds a within-budget operating point, the coarse search's
  // adopted point is also measured within budget, and the decision is
  // run-to-run deterministic in both modes.
  constexpr int kSeeds = 36;
  for (int seed = 0; seed < kSeeds; ++seed) {
    hebs::util::Rng rng(0x9e3779b97f4a7c15ULL + seed, 2 * seed + 1);
    const int size = 17 + static_cast<int>(rng.next_u32() % 64);
    hebs::image::GrayImage img(size, size);
    switch (seed % 4) {
      case 0:  // broadband noise over a random pedestal
        hebs::image::fill_rect(img, 0, 0, size, size, rng.uniform());
        hebs::image::add_gaussian_noise(img, rng.uniform(0.05, 0.4), rng);
        break;
      case 1:  // noisy gradient (smooth histogram + tails)
        hebs::image::gradient_h(img, rng.uniform(), rng.uniform());
        hebs::image::add_gaussian_noise(img, rng.uniform(0.0, 0.1), rng);
        break;
      case 2: {  // near-flat with sparse extreme spikes
        hebs::image::fill_rect(img, 0, 0, size, size, rng.uniform(0.3, 0.7));
        hebs::image::add_salt_pepper(img, rng.uniform(0.0, 0.05), rng);
        break;
      }
      default: {  // random rectangles: blocky multi-modal histogram
        for (int k = 0; k < 6; ++k) {
          const int x0 = static_cast<int>(rng.next_u32() % size);
          const int y0 = static_cast<int>(rng.next_u32() % size);
          hebs::image::fill_rect(img, x0, y0,
                                 x0 + 1 + static_cast<int>(rng.next_u32() % size),
                                 y0 + 1 + static_cast<int>(rng.next_u32() % size),
                                 rng.uniform());
        }
        break;
      }
    }
    core::HebsOptions opts;
    const double budget = rng.uniform(0.5, 25.0);
    const std::string what = "seed=" + std::to_string(seed) +
                             " size=" + std::to_string(size) +
                             " budget=" + std::to_string(budget);
    const auto coarse = run_once(img, opts, true, budget);
    const auto cold = run_once(img, opts, false, budget);
    if (cold.evaluation.distortion_percent <= budget) {
      EXPECT_LE(coarse.evaluation.distortion_percent, budget) << what;
    } else {
      // Even the widest range misses the budget; both searches take
      // the identical least-distorted early exit.
      expect_bit_identical(coarse, cold, what + " (hi infeasible)");
    }
    expect_bit_identical(coarse, run_once(img, opts, true, budget),
                         what + " (coarse determinism)");
    expect_bit_identical(cold, run_once(img, opts, false, budget),
                         what + " (frozen determinism)");
  }
}

TEST(DecisionPath, FlatFramesTakeTheColdPathVerbatim) {
  // Constant rasters have native range 0; the UIQI metric's windowed
  // variances are then pure cancellation residue and the distortion
  // landscape is deterministic noise.  The coarse ladder is gated off
  // for them (histogram max_level == min_level), so both modes must
  // run the identical cold bisection.
  for (const double v : {0.0, 0.15, 0.5, 0.75, 1.0}) {
    hebs::image::GrayImage img(40, 40);
    hebs::image::fill_rect(img, 0, 0, 40, 40, v);
    for (const double budget : {1.0, 10.0}) {
      expect_search_parity(img, {}, budget,
                           "flat=" + std::to_string(v) +
                               " budget=" + std::to_string(budget));
    }
  }
}

TEST(DecisionPath, TinyFramesUnderRmse) {
  // 1x1 and 2x2 frames are below the UIQI window, so pin the search
  // parity under the RMSE metric (well-defined at any size) instead.
  core::HebsOptions opts;
  opts.distortion.metric = hebs::quality::Metric::kRmse;
  for (const int size : {1, 2, 3}) {
    hebs::util::Rng rng(77 + size);
    hebs::image::GrayImage img(size, size);
    hebs::image::add_gaussian_noise(img, 0.5, rng);
    for (const double budget : {2.0, 10.0}) {
      expect_search_parity(img, opts, budget,
                           "tiny size=" + std::to_string(size) +
                               " budget=" + std::to_string(budget));
    }
  }
}

TEST(DecisionPath, EngineResultsIndependentOfThreadCount) {
  // Intra-frame row parallelism reorders probe evaluation internally;
  // the adopted decisions must not depend on worker count, and a
  // second identical batch must reproduce the first bit for bit.
  const auto album = hebs::image::usid_album(48);
  std::vector<hebs::image::GrayImage> frames;
  for (std::size_t i = 0; i < album.size(); i += 3) {
    frames.push_back(album[i].image);
  }
  auto run_engine = [&](int threads) {
    EngineOptions opts;
    opts.num_threads = threads;
    PipelineEngine engine(opts);
    return engine.process_batch(std::span(frames.data(), frames.size()), 10.0);
  };
  const auto serial = run_engine(1);
  const auto parallel = run_engine(4);
  const auto repeat = run_engine(1);
  ASSERT_EQ(serial.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    expect_bit_identical(serial[i], parallel[i],
                         "1t vs 4t frame " + std::to_string(i));
    expect_bit_identical(serial[i], repeat[i],
                         "run-to-run frame " + std::to_string(i));
  }
}

}  // namespace
}  // namespace hebs::pipeline
