// Tests for the zero-copy ImageView ingestion type: geometry, stride
// handling, structural validation, and bit-identity of the strided and
// RGB ingestion paths against pre-materialized images.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "hebs/hebs.h"
#include "hebs/advanced/image.h"

namespace {

using hebs::ImageView;
using hebs::PixelFormat;
using hebs::StatusCode;

TEST(ImageView, DefaultIsEmptyAndInvalid) {
  ImageView view;
  EXPECT_TRUE(view.empty());
  const hebs::Status s = view.validate();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidImage);
}

TEST(ImageView, TightlyPackedStrideIsDerived) {
  std::vector<std::uint8_t> pixels(12 * 5, 7);
  const ImageView gray = ImageView::gray8(pixels.data(), 12, 5);
  EXPECT_EQ(gray.stride_bytes(), 12);
  EXPECT_TRUE(gray.validate().ok());
  EXPECT_EQ(gray.row(2), pixels.data() + 24);

  std::vector<std::uint8_t> rgb(12 * 5 * 3, 7);
  const ImageView color = ImageView::rgb8(rgb.data(), 12, 5);
  EXPECT_EQ(color.stride_bytes(), 36);
  EXPECT_TRUE(color.validate().ok());
}

TEST(ImageView, NullDataIsInvalid) {
  const ImageView view = ImageView::gray8(nullptr, 4, 4);
  EXPECT_EQ(view.validate().code(), StatusCode::kInvalidImage);
}

TEST(ImageView, NegativeDimensionsAreInvalid) {
  std::vector<std::uint8_t> pixels(16, 0);
  EXPECT_EQ(ImageView::gray8(pixels.data(), -4, 4).validate().code(),
            StatusCode::kInvalidImage);
  EXPECT_EQ(ImageView::gray8(pixels.data(), 4, -4).validate().code(),
            StatusCode::kInvalidImage);
}

TEST(ImageView, UndersizedStrideIsInvalid) {
  std::vector<std::uint8_t> pixels(64 * 3, 0);
  EXPECT_EQ(ImageView::gray8(pixels.data(), 8, 8, 7).validate().code(),
            StatusCode::kInvalidStride);
  // An RGB row needs 3 * width bytes; the gray-sufficient stride of 8
  // is one byte short of nothing — 3*8 = 24 required.
  EXPECT_EQ(ImageView::rgb8(pixels.data(), 8, 8, 23).validate().code(),
            StatusCode::kInvalidStride);
  EXPECT_TRUE(ImageView::rgb8(pixels.data(), 8, 8, 24).validate().ok());
}

// Pathological geometry whose byte extents do not fit in ptrdiff_t
// must be rejected up front (kInvalidImage/kInvalidStride), never
// carried into the y * stride_bytes addressing where the product would
// be signed-overflow UB.
TEST(ImageView, OverflowingExtentsAreRejected) {
  std::vector<std::uint8_t> pixels(16, 0);
  const int kIntMax = std::numeric_limits<int>::max();
  const std::ptrdiff_t kPtrMax = std::numeric_limits<std::ptrdiff_t>::max();

  // stride * height overflows: a huge (but individually representable)
  // stride against a tall image.
  EXPECT_EQ(ImageView::gray8(pixels.data(), 4, 3, kPtrMax / 2)
                .validate()
                .code(),
            StatusCode::kInvalidStride);
  EXPECT_EQ(ImageView::rgb8(pixels.data(), 4, kIntMax, kPtrMax / kIntMax + 1)
                .validate()
                .code(),
            StatusCode::kInvalidStride);

  // Maximal-but-representable geometry still validates structurally
  // (the stride fits and covers a packed row).
  EXPECT_TRUE(
      ImageView::gray8(pixels.data(), 4, 3, kPtrMax / 4).validate().ok());
}

TEST(ImageView, PaddedStrideIsValid) {
  std::vector<std::uint8_t> pixels(100, 0);
  const ImageView view = ImageView::gray8(pixels.data(), 8, 8, 12);
  EXPECT_TRUE(view.validate().ok());
  EXPECT_EQ(view.row(1) - view.row(0), 12);
}

// A strided sub-rectangle view must produce exactly the same pipeline
// result as a materialized contiguous copy of the same pixels.
TEST(ImageView, StridedViewMatchesContiguousThroughSession) {
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kLena, 48);
  // Embed the frame into a wider surface (stride 64) as a real caller
  // with a padded scanout buffer would.
  const int stride = 64;
  std::vector<std::uint8_t> surface(
      static_cast<std::size_t>(stride) * img.height(), 0xAB);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      surface[static_cast<std::size_t>(y) * stride + x] = img(x, y);
    }
  }

  auto session = hebs::Session::create(hebs::SessionConfig());
  ASSERT_TRUE(session.has_value());
  auto strided = session->process(
      {ImageView::gray8(surface.data(), img.width(), img.height(), stride),
       10.0});
  auto contiguous = session->process(
      {ImageView::gray8(img.pixels().data(), img.width(), img.height()),
       10.0});
  ASSERT_TRUE(strided.has_value()) << strided.status().to_string();
  ASSERT_TRUE(contiguous.has_value());
  EXPECT_EQ(strided->beta, contiguous->beta);
  EXPECT_EQ(strided->distortion_percent, contiguous->distortion_percent);
  EXPECT_EQ(strided->displayed, contiguous->displayed);
}

// The RGB8 ingestion path extracts BT.601 luma bit-identically to
// image::RgbImage::to_luma, so both routes land on the same result.
TEST(ImageView, RgbViewMatchesPreconvertedLuma) {
  const auto color =
      hebs::image::make_usid_color(hebs::image::UsidId::kPeppers, 48);
  const auto luma = color.to_luma();

  auto session = hebs::Session::create(hebs::SessionConfig());
  ASSERT_TRUE(session.has_value());
  auto via_rgb = session->process(
      {ImageView::rgb8(color.data().data(), color.width(), color.height()),
       10.0});
  auto via_gray = session->process(
      {ImageView::gray8(luma.pixels().data(), luma.width(), luma.height()),
       10.0});
  ASSERT_TRUE(via_rgb.has_value()) << via_rgb.status().to_string();
  ASSERT_TRUE(via_gray.has_value());
  EXPECT_EQ(via_rgb->beta, via_gray->beta);
  EXPECT_EQ(via_rgb->g_min, via_gray->g_min);
  EXPECT_EQ(via_rgb->g_max, via_gray->g_max);
  EXPECT_EQ(via_rgb->distortion_percent, via_gray->distortion_percent);
  EXPECT_EQ(via_rgb->saving_percent, via_gray->saving_percent);
  EXPECT_EQ(via_rgb->displayed, via_gray->displayed);
}

}  // namespace
