// End-to-end integration tests: the whole HEBS system against the
// paper's headline claims, at shape level.
#include <gtest/gtest.h>

#include <cmath>

#include "hebs/advanced/baseline.h"
#include "hebs/advanced/core.h"
#include "hebs/advanced/display.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/quality.h"

namespace hebs {
namespace {

using core::evaluate_operating_point;
using core::hebs_exact;
using core::HebsResult;
using image::UsidId;

const power::LcdSubsystemPower& model() {
  static const auto m = power::LcdSubsystemPower::lp064v1();
  return m;
}

TEST(Integration, Table1ProtocolProducesTheExpectedTrend) {
  // Per-image savings must increase with the distortion budget, and the
  // three-budget averages must be ordered as in Table 1.
  const std::vector<UsidId> subset = {UsidId::kLena, UsidId::kPout,
                                      UsidId::kBaboon};
  double avg5 = 0.0;
  double avg10 = 0.0;
  double avg20 = 0.0;
  for (UsidId id : subset) {
    const auto img = image::make_usid(id, 64);
    const double s5 =
        hebs_exact(img, 5.0, {}, model()).evaluation.saving_percent;
    const double s10 =
        hebs_exact(img, 10.0, {}, model()).evaluation.saving_percent;
    const double s20 =
        hebs_exact(img, 20.0, {}, model()).evaluation.saving_percent;
    EXPECT_LE(s5, s10 + 1e-9) << image::usid_name(id);
    EXPECT_LE(s10, s20 + 1e-9) << image::usid_name(id);
    avg5 += s5;
    avg10 += s10;
    avg20 += s20;
  }
  avg5 /= subset.size();
  avg10 /= subset.size();
  avg20 /= subset.size();
  // Paper averages: 45.88 / 56.16 / 64.38.  Shape-level check: strictly
  // increasing and in a plausible band.
  EXPECT_GT(avg5, 20.0);
  EXPECT_LT(avg20, 85.0);
  EXPECT_LT(avg5, avg10);
  EXPECT_LT(avg10, avg20);
}

TEST(Integration, HebsBeatsBothBaselinesOnAverage) {
  // The paper's §1 claim: ~15% more saving than the best previous
  // approach at equal distortion.  Shape-level: HEBS must beat DLS and
  // CBCS on the album average at a 10% budget.
  const std::vector<UsidId> subset = {UsidId::kLena, UsidId::kPout,
                                      UsidId::kSplash, UsidId::kPeppers};
  const double budget = 10.0;
  const core::HebsPolicy hebs_policy;
  const baseline::DlsPolicy dls_policy(
      baseline::DlsMode::kBrightnessCompensation);
  const baseline::CbcsPolicy cbcs_policy;

  double hebs_total = 0.0;
  double dls_total = 0.0;
  double cbcs_total = 0.0;
  for (UsidId id : subset) {
    const auto img = image::make_usid(id, 64);
    hebs_total += evaluate_operating_point(
                      img, hebs_policy.choose(img, budget), model())
                      .saving_percent;
    dls_total += evaluate_operating_point(
                     img, dls_policy.choose(img, budget), model())
                     .saving_percent;
    cbcs_total += evaluate_operating_point(
                      img, cbcs_policy.choose(img, budget), model())
                      .saving_percent;
  }
  EXPECT_GT(hebs_total, dls_total);
  EXPECT_GT(hebs_total, cbcs_total);
}

TEST(Integration, HardwareDeploymentOfAFullHebsResultMatchesSoftware) {
  // Run the real pipeline, deploy the result both ways through the LCD
  // subsystem, and compare displayed luminance.
  const auto img = image::make_usid(UsidId::kElaine, 64);
  const HebsResult r = hebs_exact(img, 10.0, {}, model());

  display::HierarchicalLadderOptions ladder;
  ladder.bands = 64;
  ladder.dac_bits = 12;
  display::LcdSubsystem sw(model(), ladder);
  display::LcdSubsystem hw(model(), ladder);
  sw.configure(r.lambda, r.point.beta,
               display::DeploymentMode::kSoftwareTransform);
  hw.configure(r.lambda, r.point.beta,
               display::DeploymentMode::kHardwareLadder);
  const auto lum_sw = sw.display(img).luminance;
  const auto lum_hw = hw.display(img).luminance;
  EXPECT_LT(std::sqrt(quality::mse(lum_sw, lum_hw)), 0.01);
}

TEST(Integration, DefaultLadderCanRealizeEveryAlbumTransform) {
  // The 8-band ladder (8 PLC segments) must accept every Λ the pipeline
  // produces across the whole album without HardwareError.
  display::LcdSubsystem sys = display::LcdSubsystem::lp064v1();
  for (const auto& named : image::usid_album(48)) {
    const HebsResult r = hebs_exact(named.image, 10.0, {}, model());
    EXPECT_NO_THROW(sys.configure(r.lambda, r.point.beta,
                                  display::DeploymentMode::kHardwareLadder))
        << named.name;
  }
}

TEST(Integration, TransformedImagesSurvivePnmRoundTrip) {
  const auto img = image::make_usid(UsidId::kOnion, 48);
  const HebsResult r = hebs_exact(img, 10.0, {}, model());
  const std::string path = ::testing::TempDir() + "hebs_out.pgm";
  image::write_pgm(r.evaluation.transformed, path);
  EXPECT_EQ(image::read_pgm(path), r.evaluation.transformed);
  std::remove(path.c_str());
}

TEST(Integration, DistortionBudgetsHoldAcrossTheWholeAlbum) {
  for (const auto& named : image::usid_album(48)) {
    const HebsResult r = hebs_exact(named.image, 20.0, {}, model());
    EXPECT_LE(r.evaluation.distortion_percent, 20.0 + 1e-9) << named.name;
    EXPECT_GT(r.evaluation.saving_percent, 0.0) << named.name;
  }
}

TEST(Integration, MetricChoiceShiftsTheOperatingPoint) {
  // The metric ablation (future work): a plain-RMSE metric reaches a
  // different operating point than the perceptual default.
  const auto img = image::make_usid(UsidId::kTrees, 64);
  core::HebsOptions rmse_opts;
  rmse_opts.distortion.metric = quality::Metric::kRmse;
  const HebsResult perceptual = hebs_exact(img, 10.0, {}, model());
  const HebsResult pixelwise = hebs_exact(img, 10.0, rmse_opts, model());
  EXPECT_NE(perceptual.target.range(), pixelwise.target.range());
}

}  // namespace
}  // namespace hebs
