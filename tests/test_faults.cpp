// Fault-matrix tests: deterministic fault injection across the
// pipeline (DESIGN.md §14).
//
// Every throwing fault point is driven through the engine's batch and
// stream paths (gray and color) at 1, 2 and 8 threads, asserting the
// containment contract: no call fails, exactly the budgeted frames
// degrade to the identity fallback, the injection counters match the
// firings, and — the hard invariant — every frame processed after a
// contained fault is bit-identical to a run without the fault (batch)
// or to a cold run started just after it (stream, whose controller
// treats the degraded frame as a clip boundary).  The deadline path is
// driven deterministically with the stage-latency stall point, and the
// facade's typed per-frame statuses are checked end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "hebs/advanced/core.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/obs.h"
#include "hebs/advanced/pipeline.h"
#include "hebs/advanced/util.h"
#include "hebs/hebs.h"

namespace hebs::pipeline {
namespace {

namespace fault = hebs::util::fault;
using hebs::image::GrayImage;
using hebs::image::RgbImage;
using hebs::image::UsidId;

const hebs::power::LcdSubsystemPower& model() {
  static const auto m = hebs::power::LcdSubsystemPower::lp064v1();
  return m;
}

std::vector<GrayImage> small_album(int count, int size) {
  const UsidId ids[] = {UsidId::kLena, UsidId::kPeppers, UsidId::kBaboon,
                        UsidId::kGirl, UsidId::kPout,    UsidId::kSail,
                        UsidId::kTrees, UsidId::kSplash};
  std::vector<GrayImage> images;
  images.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    images.push_back(hebs::image::make_usid(ids[i % 8], size));
  }
  return images;
}

std::vector<RgbImage> small_rgb_album(int count, int size) {
  std::vector<RgbImage> images;
  images.reserve(static_cast<std::size_t>(count));
  for (const auto& g : small_album(count, size)) {
    RgbImage rgb(g.width(), g.height());
    auto dst = rgb.data();
    const auto src = g.pixels();
    for (std::size_t i = 0; i < src.size(); ++i) {
      dst[3 * i + 0] = src[i];
      dst[3 * i + 1] = static_cast<std::uint8_t>(src[i] / 2);
      dst[3 * i + 2] = static_cast<std::uint8_t>(255 - src[i]);
    }
    images.push_back(std::move(rgb));
  }
  return images;
}

void expect_same_result(const core::HebsResult& a, const core::HebsResult& b) {
  EXPECT_EQ(a.point.beta, b.point.beta);
  EXPECT_EQ(a.lambda.points(), b.lambda.points());
  EXPECT_EQ(a.evaluation.distortion_percent, b.evaluation.distortion_percent);
  EXPECT_EQ(a.evaluation.transformed, b.evaluation.transformed);
}

void expect_same_decision(const core::FrameDecision& a,
                          const core::FrameDecision& b) {
  EXPECT_EQ(a.beta, b.beta);
  EXPECT_EQ(a.raw_beta, b.raw_beta);
  EXPECT_EQ(a.point.beta, b.point.beta);
  EXPECT_EQ(a.point.luminance_transform.points(),
            b.point.luminance_transform.points());
  EXPECT_EQ(a.evaluation.transformed, b.evaluation.transformed);
}

void expect_same_rgb(const RgbImage& a, const RgbImage& b) {
  ASSERT_EQ(a.width(), b.width());
  ASSERT_EQ(a.height(), b.height());
  const auto da = a.data();
  const auto db = b.data();
  EXPECT_TRUE(std::equal(da.begin(), da.end(), db.begin(), db.end()));
}

/// The identity fallback a degraded frame must carry: β = 1, zero
/// distortion/saving, and the unmodified input as the displayed raster.
void expect_identity(const core::HebsResult& r, const GrayImage& input) {
  EXPECT_EQ(r.point.beta, 1.0);
  EXPECT_EQ(r.evaluation.distortion_percent, 0.0);
  EXPECT_EQ(r.evaluation.saving_percent, 0.0);
  EXPECT_EQ(r.evaluation.transformed, input);
}

class FaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::clear_all(); }
  void TearDown() override { fault::clear_all(); }
};

// ---------------------------------------------------------------------
// The injection machinery itself.

TEST_F(FaultMatrixTest, SpecParsing) {
  fault::Spec spec;
  std::string error;
  ASSERT_TRUE(fault::parse_spec("worker-task", &spec, &error));
  EXPECT_EQ(spec.point, fault::Point::kWorkerTask);
  EXPECT_EQ(spec.first, 1u);
  EXPECT_EQ(spec.every, 1u);
  EXPECT_EQ(spec.count, 1u);

  ASSERT_TRUE(fault::parse_spec("frame-corrupt:first=3,every=2,count=0",
                                &spec, &error));
  EXPECT_EQ(spec.point, fault::Point::kFrameCorrupt);
  EXPECT_EQ(spec.first, 3u);
  EXPECT_EQ(spec.every, 2u);
  EXPECT_EQ(spec.count, 0u);

  ASSERT_TRUE(fault::parse_spec("stage-latency:stall_us=250", &spec, &error));
  EXPECT_EQ(spec.stall_us, 250u);

  EXPECT_FALSE(fault::parse_spec("no-such-point", &spec, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(fault::parse_spec("pool-alloc:bogus=1", &spec, &error));
  EXPECT_FALSE(fault::parse_spec("pool-alloc:first=xyz", &spec, &error));

  std::vector<fault::Spec> specs;
  ASSERT_TRUE(
      fault::parse_spec_list("pool-alloc;curve-io:first=2", &specs, &error));
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].point, fault::Point::kPoolAlloc);
  EXPECT_EQ(specs[1].point, fault::Point::kCurveIo);
  EXPECT_EQ(specs[1].first, 2u);
}

TEST_F(FaultMatrixTest, FiringPatternHonorsFirstEveryCount) {
  std::string error;
  ASSERT_TRUE(fault::install_from_string("worker-task:first=2,every=3,count=2",
                                         &error))
      << error;
  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) {
    fired.push_back(fault::should_fire(fault::Point::kWorkerTask));
  }
  // 1-based hits 2 and 5 fire; the budget (count=2) then exhausts.
  const std::vector<bool> expected = {false, true,  false, false, true,
                                      false, false, false, false, false};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(fault::fired_count(fault::Point::kWorkerTask), 2u);
  EXPECT_EQ(fault::hit_count(fault::Point::kWorkerTask), 10u);
}

TEST_F(FaultMatrixTest, UnlimitedBudgetKeepsFiring) {
  std::string error;
  ASSERT_TRUE(fault::install_from_string("worker-task:count=0", &error));
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(fault::should_fire(fault::Point::kWorkerTask));
  }
  EXPECT_EQ(fault::fired_count(fault::Point::kWorkerTask), 5u);
}

TEST_F(FaultMatrixTest, SuppressScopeBlocksFiring) {
  std::string error;
  ASSERT_TRUE(fault::install_from_string("worker-task:count=0", &error));
  {
    fault::SuppressScope scope;
    EXPECT_FALSE(fault::should_fire(fault::Point::kWorkerTask));
  }
  EXPECT_TRUE(fault::should_fire(fault::Point::kWorkerTask));
}

TEST_F(FaultMatrixTest, ThrowTypesMatchTheDocumentedContract) {
  std::string error;
  ASSERT_TRUE(fault::install_from_string(
      "pool-alloc:count=0;worker-task:count=0;curve-io:count=0;"
      "trace-io:count=0;frame-corrupt:count=0",
      &error))
      << error;
  EXPECT_THROW(fault::maybe_fail(fault::Point::kPoolAlloc), std::bad_alloc);
  EXPECT_THROW(fault::maybe_fail(fault::Point::kWorkerTask),
               hebs::util::Error);
  EXPECT_THROW(fault::maybe_fail(fault::Point::kCurveIo),
               hebs::util::IoError);
  EXPECT_THROW(fault::maybe_fail(fault::Point::kTraceIo),
               hebs::util::IoError);
  EXPECT_THROW(fault::maybe_fail(fault::Point::kFrameCorrupt),
               hebs::util::Error);
}

TEST_F(FaultMatrixTest, OffClearsEveryPoint) {
  std::string error;
  ASSERT_TRUE(fault::install_from_string("pool-alloc;worker-task", &error));
  EXPECT_TRUE(fault::armed(fault::Point::kPoolAlloc));
  ASSERT_TRUE(fault::install_from_string("off", &error));
  EXPECT_FALSE(fault::armed(fault::Point::kPoolAlloc));
  EXPECT_FALSE(fault::armed(fault::Point::kWorkerTask));
}

TEST_F(FaultMatrixTest, DisarmedHotPathCountsNothing) {
  EXPECT_FALSE(fault::armed(fault::Point::kWorkerTask));
  EXPECT_FALSE(fault::should_fire(fault::Point::kWorkerTask));
  EXPECT_EQ(fault::hit_count(fault::Point::kWorkerTask), 0u);
  EXPECT_EQ(fault::fired_count(fault::Point::kWorkerTask), 0u);
}

// ---------------------------------------------------------------------
// Batch containment: every throwing point × thread counts.

struct ThrowingPoint {
  fault::Point point;
  const char* spec;
  obs::Counter counter;
};

const ThrowingPoint kThrowingPoints[] = {
    {fault::Point::kWorkerTask, "worker-task", obs::Counter::kFaultWorkerTask},
    {fault::Point::kFrameCorrupt, "frame-corrupt",
     obs::Counter::kFaultFrameCorrupt},
    {fault::Point::kPoolAlloc, "pool-alloc", obs::Counter::kFaultPoolAlloc},
};

TEST_F(FaultMatrixTest, BatchContainsEveryPointAtEveryThreadCount) {
  const auto images = small_album(8, 48);
  EngineOptions clean_opts;
  clean_opts.num_threads = 1;
  const auto reference =
      PipelineEngine(clean_opts, model()).process_batch(images, 10.0);

  for (const ThrowingPoint& tp : kThrowingPoints) {
    for (int threads : {1, 2, 8}) {
      SCOPED_TRACE(std::string(tp.spec) + " @ " + std::to_string(threads) +
                   " threads");
      fault::clear_all();
      std::string error;
      ASSERT_TRUE(fault::install_from_string(tp.spec, &error)) << error;
      const auto before = obs::snapshot_counters();

      EngineOptions opts;
      opts.num_threads = threads;
      PipelineEngine engine(opts, model());
      std::vector<FrameFault> faults;
      std::vector<core::HebsResult> results;
      ASSERT_NO_THROW(results = engine.process_batch(images, 10.0, &faults));
      fault::clear_all();  // nothing re-fires during verification

      ASSERT_EQ(results.size(), images.size());
      ASSERT_EQ(faults.size(), images.size());
      // count=1: exactly one frame degraded (which one is a scheduling
      // artifact at >1 thread; the containment is per-frame either way).
      std::size_t degraded = 0;
      for (std::size_t i = 0; i < faults.size(); ++i) {
        if (!faults[i].degraded) {
          // Uncontaminated frames are bit-identical to the clean run.
          expect_same_result(results[i], reference[i]);
          continue;
        }
        ++degraded;
        expect_identity(results[i], images[i]);
        EXPECT_FALSE(faults[i].deadline);
        EXPECT_NE(faults[i].message.find("frame " + std::to_string(i)),
                  std::string::npos)
            << faults[i].message;
        EXPECT_NE(faults[i].message.find(fault::point_name(tp.point)),
                  std::string::npos)
            << faults[i].message;
      }
      EXPECT_EQ(degraded, 1u);
      EXPECT_EQ(fault::fired_count(tp.point), 0u);  // counts reset by clear
      const auto d = obs::snapshot_counters().delta_since(before);
      EXPECT_EQ(d[tp.counter], 1u);
      EXPECT_EQ(d[obs::Counter::kFramesDegraded], 1u);
    }
  }
}

TEST_F(FaultMatrixTest, SingleFrameInlinePathContains) {
  const auto images = small_album(1, 48);
  std::string error;
  ASSERT_TRUE(fault::install_from_string("worker-task", &error));
  EngineOptions opts;
  opts.num_threads = 4;  // exercises the intra-frame row-executor setup
  PipelineEngine engine(opts, model());
  std::vector<FrameFault> faults;
  std::vector<core::HebsResult> results;
  ASSERT_NO_THROW(results = engine.process_batch(images, 10.0, &faults));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(faults[0].degraded);
  expect_identity(results[0], images[0]);
}

TEST_F(FaultMatrixTest, PersistentFaultDegradesEveryFrameWithoutEscaping) {
  // count=0 would re-fire inside the containment handler without the
  // SuppressScope; the call must still finish with every frame degraded.
  const auto images = small_album(6, 48);
  std::string error;
  ASSERT_TRUE(fault::install_from_string("worker-task:count=0", &error));
  EngineOptions opts;
  opts.num_threads = 2;
  PipelineEngine engine(opts, model());
  std::vector<FrameFault> faults;
  std::vector<core::HebsResult> results;
  ASSERT_NO_THROW(results = engine.process_batch(images, 10.0, &faults));
  fault::clear_all();
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(faults[i].degraded);
    expect_identity(results[i], images[i]);
  }
}

TEST_F(FaultMatrixTest, BatchColorContains) {
  const auto images = small_rgb_album(6, 48);
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    fault::clear_all();
    std::string error;
    ASSERT_TRUE(fault::install_from_string("worker-task", &error));
    EngineOptions opts;
    opts.num_threads = threads;
    PipelineEngine engine(opts, model());
    std::vector<FrameFault> faults;
    std::vector<ColorBatchResult> results;
    ASSERT_NO_THROW(results = engine.process_batch_color(
                        images, 10.0, core::ColorMode::kSharedCurve, &faults));
    fault::clear_all();
    ASSERT_EQ(results.size(), images.size());
    std::size_t degraded = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!faults[i].degraded) continue;
      ++degraded;
      // Degraded color frame: identity decision and the unmodified
      // input as the displayed raster, zero chroma drift.
      EXPECT_EQ(results[i].luma.point.beta, 1.0);
      expect_same_rgb(results[i].color.displayed, images[i]);
      EXPECT_EQ(results[i].color.hue_error, 0.0);
    }
    EXPECT_EQ(degraded, 1u);
  }
}

// ---------------------------------------------------------------------
// Stream containment: quarantine + the recovery bit-identity invariant.

TEST_F(FaultMatrixTest, StreamRecoveryBitIdenticalToColdRun) {
  const auto frames = small_album(8, 48);
  core::VideoOptions vopts;
  vopts.temporal_reuse = false;  // unconditional cold-path equality
  for (const ThrowingPoint& tp : kThrowingPoints) {
    for (int threads : {1, 2, 8}) {
      SCOPED_TRACE(std::string(tp.spec) + " @ " + std::to_string(threads) +
                   " threads");
      fault::clear_all();
      std::string error;
      ASSERT_TRUE(fault::install_from_string(tp.spec, &error)) << error;

      EngineOptions opts;
      opts.num_threads = threads;
      opts.temporal_reuse = false;
      PipelineEngine engine(opts, model());
      core::VideoOptions stream_opts = vopts;
      stream_opts.num_threads = threads;
      std::vector<FrameFault> faults;
      std::vector<core::FrameDecision> decisions;
      ASSERT_NO_THROW(
          decisions = engine.process_stream(frames, stream_opts, &faults));
      fault::clear_all();

      ASSERT_EQ(decisions.size(), frames.size());
      std::size_t fault_at = frames.size();
      for (std::size_t i = 0; i < faults.size(); ++i) {
        if (faults[i].degraded) {
          ASSERT_EQ(fault_at, frames.size()) << "more than one degraded frame";
          fault_at = i;
        }
      }
      ASSERT_LT(fault_at, frames.size());
      // The degraded frame is the identity decision.
      EXPECT_EQ(decisions[fault_at].beta, 1.0);
      EXPECT_EQ(decisions[fault_at].raw_beta, 1.0);
      EXPECT_EQ(decisions[fault_at].evaluation.transformed, frames[fault_at]);

      // The hard invariant: frames after the fault are bit-identical to
      // a cold run started just after it (the controller treats the
      // degraded frame as a clip boundary).
      const std::span<const GrayImage> suffix(frames.data() + fault_at + 1,
                                              frames.size() - fault_at - 1);
      EngineOptions ref_opts;
      ref_opts.num_threads = 1;
      ref_opts.temporal_reuse = false;
      core::VideoOptions ref_vopts = vopts;
      ref_vopts.num_threads = 1;
      const auto ref = PipelineEngine(ref_opts, model())
                           .process_stream(suffix, ref_vopts);
      ASSERT_EQ(ref.size(), suffix.size());
      for (std::size_t j = 0; j < ref.size(); ++j) {
        SCOPED_TRACE("suffix frame " + std::to_string(j));
        expect_same_decision(decisions[fault_at + 1 + j], ref[j]);
      }
      // Frames before the fault are untouched by it (they may share a
      // round with it, never state): equal to a clean clip prefix.
      if (fault_at > 0) {
        const std::span<const GrayImage> prefix(frames.data(), fault_at);
        const auto pre = PipelineEngine(ref_opts, model())
                             .process_stream(prefix, ref_vopts);
        for (std::size_t j = 0; j < pre.size(); ++j) {
          SCOPED_TRACE("prefix frame " + std::to_string(j));
          expect_same_decision(decisions[j], pre[j]);
        }
      }
    }
  }
}

TEST_F(FaultMatrixTest, StreamTemporalQuarantineRebuildsCleanly) {
  // Temporal mode: the faulted slot's TemporalReuse chain is discarded;
  // under the §9 monotone-distortion contract the recovered frames are
  // bit-identical to the cold path, so the same suffix check applies.
  const auto frames = small_album(8, 48);
  std::string error;
  ASSERT_TRUE(fault::install_from_string("frame-corrupt:first=3", &error));

  EngineOptions opts;
  opts.num_threads = 1;
  opts.temporal_reuse = true;
  PipelineEngine engine(opts, model());
  core::VideoOptions vopts;
  vopts.temporal_reuse = true;
  vopts.num_threads = 1;
  std::vector<FrameFault> faults;
  std::vector<core::FrameDecision> decisions;
  ASSERT_NO_THROW(decisions = engine.process_stream(frames, vopts, &faults));
  fault::clear_all();

  std::size_t fault_at = frames.size();
  for (std::size_t i = 0; i < faults.size(); ++i) {
    if (faults[i].degraded) fault_at = i;
  }
  ASSERT_LT(fault_at, frames.size());

  const std::span<const GrayImage> suffix(frames.data() + fault_at + 1,
                                          frames.size() - fault_at - 1);
  core::VideoOptions ref_vopts = vopts;
  ref_vopts.temporal_reuse = false;  // the cold baseline
  EngineOptions ref_opts;
  ref_opts.num_threads = 1;
  ref_opts.temporal_reuse = false;
  const auto ref =
      PipelineEngine(ref_opts, model()).process_stream(suffix, ref_vopts);
  for (std::size_t j = 0; j < ref.size(); ++j) {
    SCOPED_TRACE("suffix frame " + std::to_string(j));
    expect_same_decision(decisions[fault_at + 1 + j], ref[j]);
  }
}

TEST_F(FaultMatrixTest, StreamColorContains) {
  const auto frames = small_rgb_album(6, 48);
  core::VideoOptions vopts;
  vopts.temporal_reuse = false;
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    fault::clear_all();
    std::string error;
    ASSERT_TRUE(fault::install_from_string("worker-task", &error));
    EngineOptions opts;
    opts.num_threads = threads;
    opts.temporal_reuse = false;
    PipelineEngine engine(opts, model());
    core::VideoOptions stream_opts = vopts;
    stream_opts.num_threads = threads;
    std::vector<FrameFault> faults;
    std::vector<ColorStreamResult> results;
    ASSERT_NO_THROW(results = engine.process_stream_color(
                        frames, stream_opts, core::ColorMode::kSharedCurve,
                        &faults));
    fault::clear_all();
    ASSERT_EQ(results.size(), frames.size());
    std::size_t degraded = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!faults[i].degraded) continue;
      ++degraded;
      EXPECT_EQ(results[i].decision.beta, 1.0);
      expect_same_rgb(results[i].color.displayed, frames[i]);
      EXPECT_EQ(results[i].color.hue_error, 0.0);
    }
    EXPECT_EQ(degraded, 1u);
  }
}

// ---------------------------------------------------------------------
// Deadline degradation, driven deterministically by the stall point.

TEST_F(FaultMatrixTest, DeadlineMissDegradesBatchFrames) {
  const auto images = small_album(2, 32);
  std::string error;
  ASSERT_TRUE(fault::install_from_string("stage-latency:stall_us=2000,count=0",
                                         &error));
  EngineOptions opts;
  opts.num_threads = 2;
  opts.frame_deadline_us = 500;  // every stalled frame blows it
  PipelineEngine engine(opts, model());
  const auto before = obs::snapshot_counters();
  std::vector<FrameFault> faults;
  std::vector<core::HebsResult> results;
  ASSERT_NO_THROW(results = engine.process_batch(images, 10.0, &faults));
  fault::clear_all();
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(faults[i].degraded);
    EXPECT_TRUE(faults[i].deadline);
    EXPECT_NE(faults[i].message.find("deadline"), std::string::npos);
    expect_identity(results[i], images[i]);
  }
  const auto d = obs::snapshot_counters().delta_since(before);
  EXPECT_EQ(d[obs::Counter::kDeadlineMiss], images.size());
  EXPECT_EQ(d[obs::Counter::kFramesDegraded], images.size());
}

TEST_F(FaultMatrixTest, DeadlineMissDegradesStreamFrames) {
  const auto frames = small_album(2, 32);
  std::string error;
  ASSERT_TRUE(fault::install_from_string("stage-latency:stall_us=2000,count=0",
                                         &error));
  EngineOptions opts;
  opts.num_threads = 1;
  opts.temporal_reuse = false;
  opts.frame_deadline_us = 500;
  PipelineEngine engine(opts, model());
  core::VideoOptions vopts;
  vopts.temporal_reuse = false;
  vopts.num_threads = 1;
  vopts.frame_deadline_us = 500;
  std::vector<FrameFault> faults;
  std::vector<core::FrameDecision> decisions;
  ASSERT_NO_THROW(decisions = engine.process_stream(frames, vopts, &faults));
  fault::clear_all();
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    EXPECT_TRUE(faults[i].degraded);
    EXPECT_TRUE(faults[i].deadline);
    EXPECT_EQ(decisions[i].beta, 1.0);
    EXPECT_EQ(decisions[i].evaluation.transformed, frames[i]);
  }
}

TEST_F(FaultMatrixTest, NoDeadlineNoDegradation) {
  // Sanity for the soft-deadline plumbing: a generous deadline with no
  // stall degrades nothing and the results match the cold run exactly.
  const auto images = small_album(4, 48);
  EngineOptions base;
  base.num_threads = 2;
  const auto reference = PipelineEngine(base, model()).process_batch(
      images, 10.0);
  EngineOptions opts = base;
  opts.frame_deadline_us = 60'000'000;  // one minute
  std::vector<FrameFault> faults;
  const auto results =
      PipelineEngine(opts, model()).process_batch(images, 10.0, &faults);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_FALSE(faults[i].degraded);
    expect_same_result(results[i], reference[i]);
  }
}

// ---------------------------------------------------------------------
// I/O fault points.

TEST_F(FaultMatrixTest, CurveIoFaultFiresInLoadAndSave) {
  std::string error;
  ASSERT_TRUE(fault::install_from_string("curve-io:count=0", &error));
  EXPECT_THROW(core::DistortionCurve::load("/nonexistent/curve.csv"),
               hebs::util::IoError);
  EXPECT_EQ(fault::fired_count(fault::Point::kCurveIo), 1u);
}

TEST_F(FaultMatrixTest, TraceIoFaultFiresInWriter) {
  std::string error;
  ASSERT_TRUE(fault::install_from_string("trace-io", &error));
  EXPECT_THROW(obs::write_chrome_trace("/tmp/hebs_fault_trace.json"),
               hebs::util::IoError);
  EXPECT_EQ(fault::fired_count(fault::Point::kTraceIo), 1u);
}

// ---------------------------------------------------------------------
// Facade: typed per-frame statuses, spec validation, stats plumbing.

class FaultFacadeTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::clear_all(); }
  void TearDown() override { fault::clear_all(); }

  static std::vector<hebs::ImageView> views_of(
      const std::vector<GrayImage>& images) {
    std::vector<hebs::ImageView> views;
    views.reserve(images.size());
    for (const auto& img : images) {
      views.push_back(hebs::ImageView::gray8(img.pixels().data(), img.width(),
                                             img.height()));
    }
    return views;
  }
};

TEST_F(FaultFacadeTest, MalformedFaultSpecFailsCreateWithoutArming) {
  auto session = hebs::Session::create(
      hebs::SessionConfig().fault_spec("no-such-point:first=1"));
  ASSERT_FALSE(session);
  EXPECT_EQ(session.status().code(), hebs::StatusCode::kInvalidOption);
  EXPECT_NE(session.status().message().find("fault_spec"), std::string::npos);
  for (std::size_t p = 0; p < fault::kPointCount; ++p) {
    EXPECT_FALSE(fault::armed(static_cast<fault::Point>(p)));
  }
}

TEST_F(FaultFacadeTest, NegativeDeadlineIsInvalidOption) {
  auto session =
      hebs::Session::create(hebs::SessionConfig().frame_deadline_us(-1));
  ASSERT_FALSE(session);
  EXPECT_EQ(session.status().code(), hebs::StatusCode::kInvalidOption);
}

TEST_F(FaultFacadeTest, BatchReportsTypedPerFrameStatus) {
  const auto images = small_album(4, 48);
  auto session = hebs::Session::create(
      hebs::SessionConfig().threads(2).fault_spec("worker-task:first=2"));
  ASSERT_TRUE(session) << session.status().to_string();
  auto results = session->process_batch(views_of(images), 10.0);
  fault::clear_all();
  ASSERT_TRUE(results) << results.status().to_string();
  std::size_t degraded = 0;
  for (const auto& r : *results) {
    if (!r.degraded) {
      EXPECT_TRUE(r.status.ok());
      continue;
    }
    ++degraded;
    EXPECT_EQ(r.beta, 1.0);
    EXPECT_EQ(r.distortion_percent, 0.0);
    EXPECT_EQ(r.status.code(), hebs::StatusCode::kInternal);
    EXPECT_NE(r.status.message().find("injected fault"), std::string::npos)
        << r.status.message();
  }
  EXPECT_EQ(degraded, 1u);
  const auto stats = session->stats();
  EXPECT_EQ(stats.frames_degraded, 1u);
  EXPECT_EQ(stats.fault_worker_task, 1u);
  // The fault block is part of the machine-readable dump.
  EXPECT_NE(stats.to_text().find("hebs_frames_degraded_total 1"),
            std::string::npos);
}

TEST_F(FaultFacadeTest, VideoDeadlineMissIsTypedDeadlineExceeded) {
  const auto frames = small_album(2, 32);
  auto session = hebs::Session::create(
      hebs::SessionConfig()
          .threads(1)
          .temporal_reuse(false)
          .frame_deadline_us(500)
          .fault_spec("stage-latency:stall_us=2000,count=0"));
  ASSERT_TRUE(session) << session.status().to_string();
  auto results = session->process_video(views_of(frames), 10.0);
  fault::clear_all();
  ASSERT_TRUE(results) << results.status().to_string();
  for (const auto& r : *results) {
    EXPECT_TRUE(r.frame.degraded);
    EXPECT_EQ(r.frame.status.code(), hebs::StatusCode::kDeadlineExceeded);
    EXPECT_EQ(r.beta, 1.0);
  }
  const auto stats = session->stats();
  EXPECT_EQ(stats.deadline_misses, frames.size());
  EXPECT_EQ(stats.frames_degraded, frames.size());
}

TEST_F(FaultFacadeTest, CurveIoFaultSurfacesAsIoErrorAtCreate) {
  // The curve loads at create; the injected IoError keeps its typed
  // code end to end.
  auto session = hebs::Session::create(hebs::SessionConfig()
                                           .policy("hebs-curve")
                                           .curve_path("/tmp/any_curve.csv")
                                           .fault_spec("curve-io"));
  fault::clear_all();
  ASSERT_FALSE(session);
  EXPECT_EQ(session.status().code(), hebs::StatusCode::kIoError);
}

}  // namespace
}  // namespace hebs::pipeline
