// Tests for the Universal Image Quality Index — the paper's distortion
// measure (ref [8]).
#include <gtest/gtest.h>

#include <algorithm>

#include "hebs/advanced/image.h"
#include "hebs/advanced/quality.h"
#include "hebs/advanced/util.h"
#include "util/rng.h"

namespace hebs::quality {
namespace {

using hebs::image::GrayImage;

GrayImage noisy_copy(const GrayImage& img, double sigma,
                     std::uint64_t seed) {
  GrayImage out = img;
  hebs::util::Rng rng(seed);
  add_gaussian_noise(out, sigma, rng);
  return out;
}

TEST(Uiqi, IdenticalImagesScoreOne) {
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kLena, 64);
  EXPECT_NEAR(uiqi(img, img), 1.0, 1e-12);
}

TEST(Uiqi, ScoreIsSymmetric) {
  const auto a = hebs::image::make_usid(hebs::image::UsidId::kLena, 64);
  const auto b = noisy_copy(a, 0.05, 1);
  EXPECT_NEAR(uiqi(a, b), uiqi(b, a), 1e-12);
}

TEST(Uiqi, ScoreIsBoundedByOne) {
  const auto a = hebs::image::make_usid(hebs::image::UsidId::kPeppers, 64);
  for (std::uint64_t seed : {1, 2, 3}) {
    const double q = uiqi(a, noisy_copy(a, 0.1, seed));
    EXPECT_LE(q, 1.0);
    EXPECT_GE(q, -1.0);
  }
}

TEST(Uiqi, MoreNoiseScoresWorse) {
  const auto a = hebs::image::make_usid(hebs::image::UsidId::kGirl, 64);
  const double q_small = uiqi(a, noisy_copy(a, 0.02, 7));
  const double q_large = uiqi(a, noisy_copy(a, 0.15, 7));
  EXPECT_GT(q_small, q_large);
}

TEST(Uiqi, DetectsPureLuminanceShift) {
  // A mean shift keeps correlation 1 but must reduce Q (unlike plain
  // correlation) — this is UIQI's defining feature.
  GrayImage a(32, 32);
  hebs::image::fill_fbm(a, 5, 8.0, 3, 0.3, 0.6);
  GrayImage b = a;
  for (auto& p : b.pixels()) {
    p = static_cast<std::uint8_t>(std::min(255, p + 40));
  }
  EXPECT_LT(uiqi(a, b), 0.995);
}

TEST(Uiqi, DetectsContrastScaling) {
  GrayImage a(32, 32);
  hebs::image::fill_fbm(a, 6, 8.0, 3, 0.2, 0.8);
  GrayImage b = a;
  const double mean = a.mean();
  for (auto& p : b.pixels()) {
    const double v = mean + (p - mean) * 0.5;  // halve the contrast
    p = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
  }
  EXPECT_LT(uiqi(a, b), 0.95);
}

TEST(Uiqi, MatchesDirectFormulaOnSingleWindow) {
  // For an 8x8 image with one window, Q must equal the closed form.
  GrayImage a(8, 8);
  GrayImage b(8, 8);
  hebs::util::Rng rng(11);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      a(x, y) = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      b(x, y) = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
  }
  double sa = 0;
  double sb = 0;
  for (int i = 0; i < 64; ++i) {
    sa += a.pixels()[i];
    sb += b.pixels()[i];
  }
  const double ma = sa / 64;
  const double mb = sb / 64;
  double va = 0;
  double vb = 0;
  double cab = 0;
  for (int i = 0; i < 64; ++i) {
    va += (a.pixels()[i] - ma) * (a.pixels()[i] - ma);
    vb += (b.pixels()[i] - mb) * (b.pixels()[i] - mb);
    cab += (a.pixels()[i] - ma) * (b.pixels()[i] - mb);
  }
  va /= 64;
  vb /= 64;
  cab /= 64;
  const double expected =
      4.0 * cab * ma * mb / ((va + vb) * (ma * ma + mb * mb));
  EXPECT_NEAR(uiqi(a, b), expected, 1e-9);
}

TEST(Uiqi, FlatIdenticalWindowsScoreOne) {
  const GrayImage a(16, 16, 100);
  const GrayImage b(16, 16, 100);
  EXPECT_DOUBLE_EQ(uiqi(a, b), 1.0);
}

TEST(Uiqi, FlatWindowsWithDifferentMeansUseMeanCloseness) {
  const GrayImage a(8, 8, 100);
  const GrayImage b(8, 8, 200);
  // Reference special case: q = 2 m_a m_b / (m_a² + m_b²) = 0.8.
  EXPECT_NEAR(uiqi(a, b), 0.8, 1e-12);
}

TEST(Uiqi, BlackVsFlatGrayScoresZero) {
  const GrayImage a(8, 8, 0);
  const GrayImage b(8, 8, 128);
  EXPECT_DOUBLE_EQ(uiqi(a, b), 0.0);
}

TEST(Uiqi, StrideSpeedsUpWithoutChangingTheOrdering) {
  const auto a = hebs::image::make_usid(hebs::image::UsidId::kBaboon, 64);
  const auto slightly = noisy_copy(a, 0.03, 2);
  const auto heavily = noisy_copy(a, 0.2, 2);
  UiqiOptions fast;
  fast.stride = 4;
  EXPECT_GT(uiqi(a, slightly, fast), uiqi(a, heavily, fast));
}

TEST(Uiqi, FloatOverloadAgreesWithGrayOverload) {
  const auto a = hebs::image::make_usid(hebs::image::UsidId::kOnion, 64);
  const auto b = noisy_copy(a, 0.05, 3);
  const double q8 = uiqi(a, b);
  const double qf = uiqi(hebs::image::FloatImage::from_gray(a),
                         hebs::image::FloatImage::from_gray(b));
  // Same data up to the /255 scale, which cancels in Q.
  EXPECT_NEAR(q8, qf, 1e-9);
}

TEST(Uiqi, ValidatesArguments) {
  const GrayImage a(16, 16, 0);
  const GrayImage b(8, 8, 0);
  EXPECT_THROW((void)uiqi(a, b), hebs::util::InvalidArgument);
  const GrayImage tiny(4, 4, 0);
  EXPECT_THROW((void)uiqi(tiny, tiny), hebs::util::InvalidArgument);
  UiqiOptions bad;
  bad.stride = 0;
  EXPECT_THROW((void)uiqi(a, a, bad), hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::quality
