// Tests for the DBS problem framing and operating-point evaluation.
#include <gtest/gtest.h>

#include "hebs/advanced/core.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/util.h"

namespace hebs::core {
namespace {

using hebs::image::UsidId;

const hebs::power::LcdSubsystemPower& model() {
  static const auto m = hebs::power::LcdSubsystemPower::lp064v1();
  return m;
}

TEST(Dbs, IdentityPointHasZeroDistortionAndZeroSaving) {
  const auto img = hebs::image::make_usid(UsidId::kLena, 64);
  const auto eval =
      evaluate_operating_point(img, identity_operating_point(), model());
  EXPECT_NEAR(eval.distortion_percent, 0.0, 1e-6);
  EXPECT_NEAR(eval.saving_percent, 0.0, 1e-6);
  EXPECT_EQ(eval.transformed, img);
}

TEST(Dbs, DimmingWithCompensationSavesPower) {
  // ψ(x) = min(0.6, x): contrast-enhanced dimming to β = 0.6.
  const auto img = hebs::image::make_usid(UsidId::kGirl, 64);
  OperatingPoint point{
      hebs::transform::PwlCurve({{0.0, 0.0}, {0.6, 0.6}, {1.0, 0.6}}),
      0.6};
  const auto eval = evaluate_operating_point(img, point, model());
  EXPECT_GT(eval.saving_percent, 15.0);
  EXPECT_GT(eval.distortion_percent, 0.0);
  EXPECT_LT(eval.power.total(), eval.reference_power.total());
}

TEST(Dbs, LuminanceIsClippedByBeta) {
  // A transform promising more luminance than the backlight can deliver
  // must be clipped at β (transmittance can't exceed 1).
  hebs::image::GrayImage img(8, 8, 255);
  OperatingPoint point{hebs::transform::PwlCurve::identity(), 0.5};
  const auto eval = evaluate_operating_point(img, point, model());
  // Every pixel displayed at 0.5 => transformed image is uniformly 128.
  EXPECT_EQ(eval.transformed(0, 0), 128);
}

TEST(Dbs, PanelPowerUsesDrivenTransmittance) {
  // With ψ = β·1 (full transmittance), panel power must equal P(1).
  hebs::image::GrayImage img(8, 8, 200);
  OperatingPoint point{
      hebs::transform::PwlCurve({{0.0, 0.5}, {1.0, 0.5}}), 0.5};
  const auto eval = evaluate_operating_point(img, point, model());
  EXPECT_NEAR(eval.power.panel_watts, model().panel().pixel_power(1.0),
              1e-9);
}

TEST(Dbs, ReferencePowerIsFullBacklight) {
  const auto img = hebs::image::make_usid(UsidId::kOnion, 48);
  const auto eval =
      evaluate_operating_point(img, identity_operating_point(), model());
  EXPECT_NEAR(eval.reference_power.ccfl_watts, model().ccfl().power(1.0),
              1e-12);
}

TEST(Dbs, ValidatesArguments) {
  hebs::image::GrayImage empty;
  EXPECT_THROW(evaluate_operating_point(empty, identity_operating_point(),
                                        model()),
               hebs::util::InvalidArgument);
  const auto img = hebs::image::make_usid(UsidId::kPears, 32);
  OperatingPoint bad{hebs::transform::PwlCurve::identity(), 0.0};
  EXPECT_THROW(evaluate_operating_point(img, bad, model()),
               hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::core
