// Brute-force optimality check for the PLC dynamic program (Eq. 9).
//
// For small curves every breakpoint subset can be enumerated; the DP's
// claimed minimum must match the exhaustive minimum exactly.  This is
// the strongest correctness evidence for the O(m n²) solver.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "hebs/advanced/core.h"
#include "hebs/advanced/util.h"

namespace hebs::core {
namespace {

using hebs::transform::CurvePoint;
using hebs::transform::PwlCurve;

/// Squared error of approximating `pts` by the chords through the
/// chosen subset (which must include both endpoints).
double subset_error(const std::vector<CurvePoint>& pts,
                    const std::vector<std::size_t>& chosen) {
  double acc = 0.0;
  for (std::size_t c = 0; c + 1 < chosen.size(); ++c) {
    const CurvePoint& a = pts[chosen[c]];
    const CurvePoint& b = pts[chosen[c + 1]];
    const double slope = (b.y - a.y) / (b.x - a.x);
    for (std::size_t k = chosen[c]; k <= chosen[c + 1]; ++k) {
      const double d = pts[k].y - (a.y + slope * (pts[k].x - a.x));
      acc += d * d;
    }
    // Interior duplicate: every shared endpoint of two chords is counted
    // twice except it has zero error by construction, so no correction
    // is needed.
  }
  return acc;
}

/// Exhaustive minimum over all subsets with exactly `segments` chords.
double brute_force_min(const std::vector<CurvePoint>& pts, int segments) {
  const std::size_t n = pts.size();
  double best = std::numeric_limits<double>::infinity();
  // Choose `segments - 1` interior breakpoints out of n - 2.
  std::vector<std::size_t> interior;
  const auto recurse = [&](auto&& self, std::size_t start,
                           int remaining) -> void {
    if (remaining == 0) {
      std::vector<std::size_t> chosen = {0};
      chosen.insert(chosen.end(), interior.begin(), interior.end());
      chosen.push_back(n - 1);
      best = std::min(best, subset_error(pts, chosen));
      return;
    }
    for (std::size_t i = start; i + static_cast<std::size_t>(remaining) < n;
         ++i) {
      interior.push_back(i);
      self(self, i + 1, remaining - 1);
      interior.pop_back();
    }
  };
  recurse(recurse, 1, segments - 1);
  return best;
}

std::vector<CurvePoint> random_monotone_curve(int n, std::uint64_t seed) {
  hebs::util::Rng rng(seed);
  std::vector<CurvePoint> pts;
  double y = 0.0;
  for (int i = 0; i < n; ++i) {
    y += rng.uniform(0.0, 0.2);
    pts.push_back({static_cast<double>(i) / (n - 1), y});
  }
  return pts;
}

/// Sweep curve sizes and segment budgets against brute force.
class PlcVsBruteForce
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PlcVsBruteForce, DpMatchesExhaustiveMinimum) {
  const auto [n, segments, seed] = GetParam();
  const auto pts =
      random_monotone_curve(n, static_cast<std::uint64_t>(seed));
  const PwlCurve curve{std::vector<CurvePoint>(pts)};
  const PlcResult dp = plc_coarsen(curve, segments);
  // The DP may return fewer segments when that is at least as good; the
  // brute force over exactly `segments` must not beat it.
  const double brute = brute_force_min(pts, segments);
  const double dp_total = dp.mse * static_cast<double>(pts.size());
  EXPECT_LE(dp_total, brute + 1e-12)
      << "n=" << n << " m=" << segments << " seed=" << seed;
  // And the DP result must be attainable: not better than the best over
  // all segment counts up to m (which brute force bounds from below via
  // monotonicity in m).
  double best_any = brute;
  for (int s = 1; s < segments; ++s) {
    best_any = std::min(best_any, brute_force_min(pts, s));
  }
  EXPECT_GE(dp_total, -1e-12);
  EXPECT_NEAR(dp_total, std::min(brute, best_any), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SmallCurves, PlcVsBruteForce,
    ::testing::Combine(::testing::Values(6, 8, 10), ::testing::Values(2, 3, 4),
                       ::testing::Values(1, 2, 3)));

TEST(PlcBruteForce, HarnessSanity) {
  // The harness itself: a perfect two-chord curve has zero brute-force
  // error at m = 2 and positive at m = 1.
  std::vector<CurvePoint> knee;
  for (int i = 0; i <= 8; ++i) {
    const double x = i / 8.0;
    knee.push_back({x, x <= 0.5 ? 0.0 : x - 0.5});
  }
  EXPECT_GT(brute_force_min(knee, 1), 1e-6);
  EXPECT_NEAR(brute_force_min(knee, 2), 0.0, 1e-15);
}

}  // namespace
}  // namespace hebs::core
