// Tests for SSIM (the paper's future-work distortion measure, ref [6]).
#include <gtest/gtest.h>

#include "hebs/advanced/image.h"
#include "hebs/advanced/quality.h"
#include "hebs/advanced/util.h"
#include "util/rng.h"

namespace hebs::quality {
namespace {

using hebs::image::GrayImage;

GrayImage noisy_copy(const GrayImage& img, double sigma,
                     std::uint64_t seed) {
  GrayImage out = img;
  hebs::util::Rng rng(seed);
  add_gaussian_noise(out, sigma, rng);
  return out;
}

TEST(Ssim, IdenticalImagesScoreOne) {
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kLena, 64);
  EXPECT_NEAR(ssim(img, img), 1.0, 1e-12);
}

TEST(Ssim, SymmetricAndBounded) {
  const auto a = hebs::image::make_usid(hebs::image::UsidId::kTrees, 64);
  const auto b = noisy_copy(a, 0.08, 1);
  EXPECT_NEAR(ssim(a, b), ssim(b, a), 1e-12);
  EXPECT_LE(ssim(a, b), 1.0);
  EXPECT_GE(ssim(a, b), -1.0);
}

TEST(Ssim, MoreNoiseScoresWorse) {
  const auto a = hebs::image::make_usid(hebs::image::UsidId::kElaine, 64);
  EXPECT_GT(ssim(a, noisy_copy(a, 0.02, 5)),
            ssim(a, noisy_copy(a, 0.2, 5)));
}

TEST(Ssim, StableOnFlatImages) {
  // The constants C1/C2 must prevent division blowups where UIQI's
  // denominators vanish.
  const GrayImage a(16, 16, 0);
  const GrayImage b(16, 16, 0);
  EXPECT_NEAR(ssim(a, b), 1.0, 1e-12);
  const GrayImage c(16, 16, 10);
  const double s = ssim(a, c);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

TEST(Ssim, FlatDifferentMeansScoreBelowOne) {
  const GrayImage a(8, 8, 100);
  const GrayImage b(8, 8, 200);
  const double s = ssim(a, b);
  EXPECT_LT(s, 0.9);
  EXPECT_GT(s, 0.0);
}

TEST(Ssim, TracksUiqiOrderingOnNoise) {
  // SSIM is UIQI plus stabilizing constants, so orderings should agree
  // on clearly separated distortion levels.
  const auto a = hebs::image::make_usid(hebs::image::UsidId::kWest, 64);
  const double s1 = ssim(a, noisy_copy(a, 0.01, 2));
  const double s2 = ssim(a, noisy_copy(a, 0.05, 2));
  const double s3 = ssim(a, noisy_copy(a, 0.25, 2));
  EXPECT_GT(s1, s2);
  EXPECT_GT(s2, s3);
}

TEST(Ssim, FloatOverloadUsesUnitDynamicRange) {
  const auto a = hebs::image::make_usid(hebs::image::UsidId::kPears, 64);
  const auto b = noisy_copy(a, 0.05, 3);
  const double s8 = ssim(a, b);
  const double sf = ssim(hebs::image::FloatImage::from_gray(a),
                         hebs::image::FloatImage::from_gray(b));
  // The same relative constants are used, so scores agree closely.
  EXPECT_NEAR(s8, sf, 1e-6);
}

TEST(Ssim, ValidatesArguments) {
  const GrayImage a(16, 16, 0);
  const GrayImage b(8, 8, 0);
  EXPECT_THROW((void)ssim(a, b), hebs::util::InvalidArgument);
  SsimOptions bad;
  bad.block_size = 1;
  EXPECT_THROW((void)ssim(a, a, bad), hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::quality
