// Tests for the video backlight controller (flicker-controlled
// per-frame HEBS — the paper's future-work extension).
#include <gtest/gtest.h>

#include "hebs/advanced/core.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/util.h"

namespace hebs::core {
namespace {

VideoOptions fast_options() {
  VideoOptions opts;
  opts.d_max_percent = 10.0;
  opts.max_beta_step = 0.04;
  return opts;
}

TEST(Video, ProcessClipReturnsOneDecisionPerFrame) {
  VideoBacklightController ctl(fast_options());
  const auto clip = hebs::image::make_video_clip(8, 48);
  const auto decisions = ctl.process_clip(clip);
  EXPECT_EQ(decisions.size(), clip.size());
}

TEST(Video, FlickerIsRateLimitedOutsideSceneCuts) {
  VideoBacklightController ctl(fast_options());
  const auto clip = hebs::image::make_video_clip(16, 48);
  const auto decisions = ctl.process_clip(clip);
  EXPECT_LE(VideoBacklightController::max_flicker_step(decisions),
            fast_options().max_beta_step + 1e-9);
}

TEST(Video, SceneCutAllowsAnImmediateJump) {
  // Build a clip with an abrupt dark-to-bright cut; the controller must
  // flag it and may jump β beyond the rate limit.
  std::vector<hebs::image::GrayImage> clip;
  for (int i = 0; i < 5; ++i) {
    clip.emplace_back(48, 48, static_cast<std::uint8_t>(230));
  }
  for (int i = 0; i < 5; ++i) {
    clip.emplace_back(48, 48, static_cast<std::uint8_t>(25));
  }
  VideoOptions opts = fast_options();
  opts.scene_cut_threshold = 0.5;
  VideoBacklightController ctl(opts);
  const auto decisions = ctl.process_clip(clip);
  EXPECT_TRUE(decisions[5].scene_cut);
  // After the cut to a dark scene the backlight should drop sharply.
  EXPECT_LT(decisions[5].beta, decisions[4].beta - opts.max_beta_step);
}

TEST(Video, SavesEnergyOnRealContent) {
  VideoBacklightController ctl(fast_options());
  const auto clip = hebs::image::make_video_clip(10, 48);
  const auto decisions = ctl.process_clip(clip);
  double mean_saving = 0.0;
  for (const auto& d : decisions) {
    mean_saving += d.evaluation.saving_percent;
  }
  mean_saving /= static_cast<double>(decisions.size());
  EXPECT_GT(mean_saving, 15.0);
}

TEST(Video, FirstFrameIsUnconstrained) {
  VideoBacklightController ctl(fast_options());
  const auto frame = hebs::image::make_usid(hebs::image::UsidId::kPout, 48);
  const auto d = ctl.process(frame);
  // No history: applied β equals the per-frame optimum.
  EXPECT_NEAR(d.beta, d.raw_beta, 1e-12);
  EXPECT_FALSE(d.scene_cut);
}

TEST(Video, ResetForgetsHistory) {
  VideoBacklightController ctl(fast_options());
  const auto bright = hebs::image::GrayImage(48, 48, 240);
  const auto dark = hebs::image::GrayImage(48, 48, 30);
  (void)ctl.process(bright);
  ctl.reset();
  const auto d = ctl.process(dark);
  EXPECT_NEAR(d.beta, d.raw_beta, 1e-12);  // no rate limit applied
}

TEST(Video, AppliedDistortionStaysReasonable) {
  // Rate limiting can deviate from the per-frame optimum, but the
  // re-derived transform keeps distortion bounded.
  VideoBacklightController ctl(fast_options());
  const auto clip = hebs::image::make_video_clip(12, 48);
  for (const auto& d : ctl.process_clip(clip)) {
    EXPECT_LT(d.evaluation.distortion_percent, 30.0);
  }
}

TEST(Video, ValidatesOptions) {
  VideoOptions bad = fast_options();
  bad.max_beta_step = 0.0;
  EXPECT_THROW(VideoBacklightController{bad}, hebs::util::InvalidArgument);
  VideoOptions bad2 = fast_options();
  bad2.ema_alpha = 1.5;
  EXPECT_THROW(VideoBacklightController{bad2}, hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::core
