// Tests for the CCFL, TFT-panel and subsystem power models (§5.1).
#include <gtest/gtest.h>

#include "hebs/advanced/image.h"
#include "hebs/advanced/power.h"
#include "power/tft_panel.h"
#include "hebs/advanced/util.h"

namespace hebs::power {
namespace {

TEST(Ccfl, Lp064v1MatchesPublishedCoefficients) {
  const auto c = CcflModel::lp064v1().coefficients();
  EXPECT_DOUBLE_EQ(c.c_s, 0.8234);
  EXPECT_DOUBLE_EQ(c.a_lin, 1.9600);
  EXPECT_DOUBLE_EQ(c.c_lin, -0.2372);
  EXPECT_DOUBLE_EQ(c.a_sat, 6.9440);
  EXPECT_DOUBLE_EQ(c.c_sat, -4.3240);
}

TEST(Ccfl, PowerAtFullBacklightMatchesEq11) {
  const auto m = CcflModel::lp064v1();
  // Saturation branch at β = 1: 6.944 - 4.324 = 2.62 W.
  EXPECT_NEAR(m.power(1.0), 2.62, 1e-9);
  EXPECT_NEAR(m.full_power(), 2.62, 1e-9);
}

TEST(Ccfl, LinearBranchBelowTheKnee) {
  const auto m = CcflModel::lp064v1();
  EXPECT_NEAR(m.power(0.5), 1.96 * 0.5 - 0.2372, 1e-12);
}

TEST(Ccfl, PowerIsClampedAtZeroForTinyBeta) {
  const auto m = CcflModel::lp064v1();
  EXPECT_DOUBLE_EQ(m.power(0.0), 0.0);  // fit gives -0.2372, clamp to 0
  EXPECT_GE(m.power(0.05), 0.0);
}

/// Property sweep: power is non-decreasing in β over the whole domain.
class CcflMonotonic : public ::testing::TestWithParam<int> {};

TEST_P(CcflMonotonic, PowerIsMonotoneInBeta) {
  const auto m = CcflModel::lp064v1();
  const double step = 1.0 / 50.0;
  const double beta = GetParam() * step;
  if (beta + step <= 1.0) {
    EXPECT_LE(m.power(beta), m.power(beta + step) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(BetaGrid, CcflMonotonic, ::testing::Range(0, 50));

TEST(Ccfl, SaturationMakesHighBetaDisproportionatelyExpensive) {
  // The marginal watt per unit β above the knee is much larger — the
  // physical effect that makes dimming so profitable.
  const auto m = CcflModel::lp064v1();
  const double low_slope = (m.power(0.6) - m.power(0.5)) / 0.1;
  const double high_slope = (m.power(1.0) - m.power(0.9)) / 0.1;
  EXPECT_GT(high_slope, 3.0 * low_slope);
}

TEST(Ccfl, BetaAtPowerInvertsPower) {
  const auto m = CcflModel::lp064v1();
  for (double beta : {0.3, 0.5, 0.7, 0.85, 0.95}) {
    EXPECT_NEAR(m.beta_at_power(m.power(beta)), beta, 1e-9);
  }
  EXPECT_DOUBLE_EQ(m.beta_at_power(100.0), 1.0);
}

TEST(Ccfl, ValidatesArguments) {
  const auto m = CcflModel::lp064v1();
  EXPECT_THROW((void)m.power(-0.1), hebs::util::InvalidArgument);
  EXPECT_THROW((void)m.power(1.1), hebs::util::InvalidArgument);
  EXPECT_THROW(CcflModel({.c_s = 1.5, .a_lin = 1, .c_lin = 0,
                          .a_sat = 1, .c_sat = 0}),
               hebs::util::InvalidArgument);
  EXPECT_THROW(CcflModel({.c_s = 0.5, .a_lin = -1, .c_lin = 0,
                          .a_sat = 1, .c_sat = 0}),
               hebs::util::InvalidArgument);
}

TEST(Ccfl, FitRecoversModelFromLabBenchSamples) {
  // The Fig. 6a flow: measure a synthetic lamp, fit Eq. 11, and land
  // near the published coefficients.
  BenchOptions opts;
  opts.points = 60;
  opts.noise_watts = 0.005;
  const auto samples = measure_ccfl(opts, 0.3);
  std::vector<double> xs;
  std::vector<double> ys;
  split_samples(samples, xs, ys);
  const auto fitted = CcflModel::fit(xs, ys).coefficients();
  EXPECT_NEAR(fitted.c_s, 0.8234, 0.05);
  EXPECT_NEAR(fitted.a_lin, 1.96, 0.15);
  EXPECT_NEAR(fitted.a_sat, 6.944, 0.6);
}

TEST(Panel, Lp064v1MatchesPublishedCoefficients) {
  const auto c = TftPanelModel::lp064v1().coefficients();
  EXPECT_DOUBLE_EQ(c.a, 0.02449);
  EXPECT_DOUBLE_EQ(c.b, 0.04984);
  EXPECT_DOUBLE_EQ(c.c, 0.993);
}

TEST(Panel, PixelPowerIsEq12) {
  const auto m = TftPanelModel::lp064v1();
  EXPECT_NEAR(m.pixel_power(0.0), 0.993, 1e-12);
  EXPECT_NEAR(m.pixel_power(1.0), 0.02449 + 0.04984 + 0.993, 1e-12);
  EXPECT_NEAR(m.pixel_power(0.5), 0.02449 * 0.25 + 0.04984 * 0.5 + 0.993,
              1e-12);
}

TEST(Panel, PanelSwingIsSmallComparedToCcfl) {
  // §5.1b: "the change in the TFT-LCD power consumption is quite small
  // compared to the change in CCFL power consumption."
  const auto panel = TftPanelModel::lp064v1();
  const auto ccfl = CcflModel::lp064v1();
  const double panel_swing = panel.pixel_power(1.0) - panel.pixel_power(0.0);
  const double ccfl_swing = ccfl.power(1.0) - ccfl.power(0.2);
  EXPECT_LT(panel_swing * 10.0, ccfl_swing);
}

TEST(Panel, ImagePowerEqualsHistogramPower) {
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kLena, 64);
  const auto m = TftPanelModel::lp064v1();
  const auto hist = hebs::histogram::Histogram::from_image(img);
  EXPECT_NEAR(m.image_power(img), m.image_power(hist), 1e-12);
}

TEST(Panel, ImagePowerOfConstantImageIsPixelPower) {
  const hebs::image::GrayImage img(8, 8, 128);
  const auto m = TftPanelModel::lp064v1();
  EXPECT_NEAR(m.image_power(img), m.pixel_power(128.0 / 255.0), 1e-12);
}

TEST(Panel, FitRecoversQuadraticFromLabBench) {
  BenchOptions opts;
  opts.points = 40;
  opts.noise_watts = 0.0005;
  const auto samples = measure_panel(opts);
  std::vector<double> xs;
  std::vector<double> ys;
  split_samples(samples, xs, ys);
  const auto fitted = TftPanelModel::fit(xs, ys).coefficients();
  EXPECT_NEAR(fitted.c, 0.993, 0.01);
  EXPECT_NEAR(fitted.b, 0.04984, 0.05);
}

TEST(Panel, ValidatesArguments) {
  const auto m = TftPanelModel::lp064v1();
  EXPECT_THROW((void)m.pixel_power(-0.1), hebs::util::InvalidArgument);
  EXPECT_THROW((void)m.pixel_power(1.1), hebs::util::InvalidArgument);
  hebs::histogram::Histogram empty;
  EXPECT_THROW((void)m.image_power(empty), hebs::util::InvalidArgument);
}

TEST(Subsystem, FramePowerIsCcflPlusPanel) {
  const auto sys = LcdSubsystemPower::lp064v1();
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kGirl, 64);
  const auto p = sys.frame_power(img, 0.8);
  EXPECT_NEAR(p.ccfl_watts, sys.ccfl().power(0.8), 1e-12);
  EXPECT_NEAR(p.panel_watts, sys.panel().image_power(img), 1e-12);
  EXPECT_NEAR(p.total(), p.ccfl_watts + p.panel_watts, 1e-12);
}

TEST(Subsystem, NoDimmingOfSameImageYieldsZeroSaving) {
  const auto sys = LcdSubsystemPower::lp064v1();
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kPout, 64);
  EXPECT_NEAR(sys.saving_percent(img, img, 1.0), 0.0, 1e-9);
}

TEST(Subsystem, DimmingSavesPower) {
  const auto sys = LcdSubsystemPower::lp064v1();
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kLena, 64);
  EXPECT_GT(sys.saving_percent(img, img, 0.5), 30.0);
}

/// Property sweep: saving grows monotonically as β shrinks.
class SavingMonotone : public ::testing::TestWithParam<int> {};

TEST_P(SavingMonotone, DeeperDimmingNeverSavesLess) {
  const auto sys = LcdSubsystemPower::lp064v1();
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kOnion, 48);
  const double beta = 0.1 + 0.05 * GetParam();
  if (beta + 0.05 <= 1.0) {
    EXPECT_GE(sys.saving_percent(img, img, beta) + 1e-9,
              sys.saving_percent(img, img, beta + 0.05));
  }
}

INSTANTIATE_TEST_SUITE_P(BetaGrid, SavingMonotone, ::testing::Range(0, 18));

TEST(Subsystem, ClipEnergyIntegratesFramePower) {
  const auto sys = LcdSubsystemPower::lp064v1();
  const hebs::image::GrayImage frame(16, 16, 100);
  const std::vector<hebs::image::GrayImage> frames = {frame, frame};
  const std::vector<double> betas = {1.0, 1.0};
  const double expected = 2.0 * sys.frame_power(frame, 1.0).total() * 0.04;
  EXPECT_NEAR(sys.clip_energy_joules(frames, betas, 0.04), expected, 1e-9);
}

TEST(Subsystem, ClipEnergyValidatesArguments) {
  const auto sys = LcdSubsystemPower::lp064v1();
  const std::vector<hebs::image::GrayImage> frames = {
      hebs::image::GrayImage(8, 8, 0)};
  EXPECT_THROW(
      (void)sys.clip_energy_joules(frames, {0.5, 0.5}, 0.04),
      hebs::util::InvalidArgument);
  EXPECT_THROW((void)sys.clip_energy_joules(frames, {0.5}, 0.0),
               hebs::util::InvalidArgument);
}

TEST(LabBench, MeasurementsAreDeterministicPerSeed) {
  const auto a = measure_ccfl();
  const auto b = measure_ccfl();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].y, b[i].y);
  }
}

TEST(LabBench, SamplesCoverTheSweep) {
  const auto samples = measure_ccfl({}, 0.2);
  EXPECT_NEAR(samples.front().x, 0.2, 1e-12);
  EXPECT_NEAR(samples.back().x, 1.0, 1e-12);
}

TEST(LabBench, SplitSamplesSortsByX) {
  std::vector<Sample> samples = {{0.5, 1.0}, {0.1, 2.0}, {0.9, 3.0}};
  std::vector<double> xs;
  std::vector<double> ys;
  split_samples(samples, xs, ys);
  EXPECT_EQ(xs, (std::vector<double>{0.1, 0.5, 0.9}));
  EXPECT_EQ(ys, (std::vector<double>{2.0, 1.0, 3.0}));
}

}  // namespace
}  // namespace hebs::power
