// Tests for the recycling buffer pool (util/pool.h): recycling
// behavior, scope nesting, cross-thread frees, and blocks that outlive
// their pool.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "hebs/advanced/util.h"

namespace hebs::util {
namespace {

TEST(BufferPool, RecyclesFreedBlocks) {
  BufferPool pool;
  PoolScope scope(&pool);
  { PoolVector<double> v(1000); }
  const auto after_first = pool.stats();
  EXPECT_EQ(after_first.misses, 1u);
  EXPECT_EQ(after_first.outstanding, 0u);
  EXPECT_GT(after_first.retained_bytes, 0u);
  { PoolVector<double> v(1000); }
  const auto after_second = pool.stats();
  EXPECT_EQ(after_second.hits, 1u);
  EXPECT_EQ(after_second.misses, 1u);
}

TEST(BufferPool, SimilarSizesShareABucket) {
  BufferPool pool;
  PoolScope scope(&pool);
  { PoolVector<std::uint8_t> v(1000); }
  { PoolVector<std::uint8_t> v(1020); }  // same 64-byte bucket
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPool, NoScopeMeansPlainHeap) {
  BufferPool pool;
  { PoolVector<double> v(100); }  // no scope installed
  const auto s = pool.stats();
  EXPECT_EQ(s.hits + s.misses, 0u);
  EXPECT_EQ(s.retained_bytes, 0u);
}

TEST(BufferPool, ScopesNest) {
  BufferPool outer;
  BufferPool inner;
  PoolScope outer_scope(&outer);
  {
    PoolScope inner_scope(&inner);
    { PoolVector<double> v(64); }
    EXPECT_EQ(inner.stats().misses, 1u);
    EXPECT_EQ(outer.stats().misses, 0u);
  }
  { PoolVector<double> v(64); }
  EXPECT_EQ(outer.stats().misses, 1u);
}

TEST(BufferPool, FreeGoesToOriginNotCurrent) {
  BufferPool a;
  BufferPool b;
  PoolVector<double> v;
  {
    PoolScope scope(&a);
    v.assign(128, 0.0);
  }
  {
    PoolScope scope(&b);
    v = PoolVector<double>();  // frees a's block while b is current
  }
  EXPECT_GT(a.stats().retained_bytes, 0u);
  EXPECT_EQ(b.stats().retained_bytes, 0u);
}

TEST(BufferPool, CrossThreadFreeIsSafe) {
  BufferPool pool;
  PoolVector<double> v;
  {
    PoolScope scope(&pool);
    v.assign(4096, 1.0);
  }
  std::thread t([moved = std::move(v)]() mutable {
    moved.clear();
    moved.shrink_to_fit();
  });
  t.join();
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_GT(pool.stats().retained_bytes, 0u);
}

TEST(BufferPool, BlocksMayOutliveThePool) {
  PoolVector<double> survivor;
  {
    BufferPool pool;
    PoolScope scope(&pool);
    survivor.assign(512, 3.0);
  }
  // The pool is gone; the block frees through the detached core.
  EXPECT_EQ(survivor[511], 3.0);
  survivor = PoolVector<double>();  // must not crash or leak (ASan job)
}

TEST(BufferPool, RetentionCapEvictsToHeap) {
  BufferPool pool(PoolOptions{/*max_retained_bytes=*/256});
  PoolScope scope(&pool);
  { PoolVector<double> v(4096); }  // 32 KiB > cap: freed to the heap
  EXPECT_EQ(pool.stats().retained_bytes, 0u);
  { PoolVector<std::uint8_t> v(100); }  // under the cap: cached
  EXPECT_GT(pool.stats().retained_bytes, 0u);
}

TEST(BufferPool, TrimReleasesCachedBlocks) {
  BufferPool pool;
  PoolScope scope(&pool);
  { PoolVector<double> v(1000); }
  EXPECT_GT(pool.stats().retained_bytes, 0u);
  pool.trim();
  EXPECT_EQ(pool.stats().retained_bytes, 0u);
}

// -------------------------------------------------------- unwind safety

TEST(BufferPool, ScopeUnwindsCleanlyThroughAnException) {
  // DESIGN.md §14: pooled blocks allocated before a throw free back to
  // the pool during unwind, the scope uninstalls, and the accounting
  // balances — nothing outstanding, nothing leaked (the ASan job seals
  // the leak half).
  BufferPool pool;
  try {
    PoolScope scope(&pool);
    PoolVector<double> a(256);
    PoolVector<std::uint8_t> b(1024);
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_GT(pool.stats().retained_bytes, 0u);  // freed to the free list
  // The pool is immediately reusable and recycles the unwound blocks.
  PoolScope scope(&pool);
  PoolVector<double> again(256);
  EXPECT_GT(pool.stats().hits, 0u);
}

TEST(BufferPool, NestedScopeUnwindRestoresOuterPool) {
  BufferPool outer;
  BufferPool inner;
  PoolScope outer_scope(&outer);
  try {
    PoolScope inner_scope(&inner);
    PoolVector<double> v(64);
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
  // The unwound inner scope restored the outer pool as the arena.
  { PoolVector<double> v(64); }
  EXPECT_EQ(inner.stats().outstanding, 0u);
  EXPECT_GT(outer.stats().misses, 0u);
}

// ------------------------------------------------ exhaustion degradation

TEST(BufferPool, ByteCapDegradesToCountedHeapFallback) {
  // A pool capped below the request must not fail the allocation: it
  // serves a plain-heap block and counts the degradation.
  BufferPool pool(PoolOptions{/*max_retained_bytes=*/0,
                              /*max_pool_bytes=*/1024});
  PoolScope scope(&pool);
  {
    PoolVector<double> big(4096);  // 32 KiB, far past the 1 KiB cap
    big[4095] = 7.0;               // the block is real and writable
    EXPECT_EQ(big[4095], 7.0);
    EXPECT_EQ(pool.stats().heap_fallbacks, 1u);
    // Fallback blocks bypass the pool's outstanding accounting.
    EXPECT_EQ(pool.stats().outstanding, 0u);
  }
  // Frees cleanly (straight back to the heap; ASan seals this).
  EXPECT_EQ(pool.stats().heap_fallbacks, 1u);
}

TEST(BufferPool, UnderCapAllocationsStillPool) {
  BufferPool pool(PoolOptions{/*max_retained_bytes=*/0,
                              /*max_pool_bytes=*/1 << 20});
  PoolScope scope(&pool);
  { PoolVector<double> v(128); }
  EXPECT_EQ(pool.stats().heap_fallbacks, 0u);
  { PoolVector<double> v(128); }
  EXPECT_GT(pool.stats().hits, 0u);  // recycled, not degraded
}

TEST(BufferPool, CapAppliesToOutstandingBytesNotTraffic) {
  // Sequential allocations under the cap never degrade, no matter how
  // many: the cap bounds simultaneous checkout, not cumulative traffic.
  BufferPool pool(PoolOptions{/*max_retained_bytes=*/0,
                              /*max_pool_bytes=*/64 * 1024});
  PoolScope scope(&pool);
  for (int i = 0; i < 100; ++i) {
    PoolVector<std::uint8_t> v(16 * 1024);
  }
  EXPECT_EQ(pool.stats().heap_fallbacks, 0u);
  // Holding two such blocks at once blows the cap: the second degrades.
  PoolVector<std::uint8_t> a(48 * 1024);
  PoolVector<std::uint8_t> b(48 * 1024);
  EXPECT_EQ(pool.stats().heap_fallbacks, 1u);
}

}  // namespace
}  // namespace hebs::util
