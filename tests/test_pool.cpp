// Tests for the recycling buffer pool (util/pool.h): recycling
// behavior, scope nesting, cross-thread frees, and blocks that outlive
// their pool.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <utility>

#include "hebs/advanced/util.h"

namespace hebs::util {
namespace {

TEST(BufferPool, RecyclesFreedBlocks) {
  BufferPool pool;
  PoolScope scope(&pool);
  { PoolVector<double> v(1000); }
  const auto after_first = pool.stats();
  EXPECT_EQ(after_first.misses, 1u);
  EXPECT_EQ(after_first.outstanding, 0u);
  EXPECT_GT(after_first.retained_bytes, 0u);
  { PoolVector<double> v(1000); }
  const auto after_second = pool.stats();
  EXPECT_EQ(after_second.hits, 1u);
  EXPECT_EQ(after_second.misses, 1u);
}

TEST(BufferPool, SimilarSizesShareABucket) {
  BufferPool pool;
  PoolScope scope(&pool);
  { PoolVector<std::uint8_t> v(1000); }
  { PoolVector<std::uint8_t> v(1020); }  // same 64-byte bucket
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST(BufferPool, NoScopeMeansPlainHeap) {
  BufferPool pool;
  { PoolVector<double> v(100); }  // no scope installed
  const auto s = pool.stats();
  EXPECT_EQ(s.hits + s.misses, 0u);
  EXPECT_EQ(s.retained_bytes, 0u);
}

TEST(BufferPool, ScopesNest) {
  BufferPool outer;
  BufferPool inner;
  PoolScope outer_scope(&outer);
  {
    PoolScope inner_scope(&inner);
    { PoolVector<double> v(64); }
    EXPECT_EQ(inner.stats().misses, 1u);
    EXPECT_EQ(outer.stats().misses, 0u);
  }
  { PoolVector<double> v(64); }
  EXPECT_EQ(outer.stats().misses, 1u);
}

TEST(BufferPool, FreeGoesToOriginNotCurrent) {
  BufferPool a;
  BufferPool b;
  PoolVector<double> v;
  {
    PoolScope scope(&a);
    v.assign(128, 0.0);
  }
  {
    PoolScope scope(&b);
    v = PoolVector<double>();  // frees a's block while b is current
  }
  EXPECT_GT(a.stats().retained_bytes, 0u);
  EXPECT_EQ(b.stats().retained_bytes, 0u);
}

TEST(BufferPool, CrossThreadFreeIsSafe) {
  BufferPool pool;
  PoolVector<double> v;
  {
    PoolScope scope(&pool);
    v.assign(4096, 1.0);
  }
  std::thread t([moved = std::move(v)]() mutable {
    moved.clear();
    moved.shrink_to_fit();
  });
  t.join();
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_GT(pool.stats().retained_bytes, 0u);
}

TEST(BufferPool, BlocksMayOutliveThePool) {
  PoolVector<double> survivor;
  {
    BufferPool pool;
    PoolScope scope(&pool);
    survivor.assign(512, 3.0);
  }
  // The pool is gone; the block frees through the detached core.
  EXPECT_EQ(survivor[511], 3.0);
  survivor = PoolVector<double>();  // must not crash or leak (ASan job)
}

TEST(BufferPool, RetentionCapEvictsToHeap) {
  BufferPool pool(PoolOptions{/*max_retained_bytes=*/256});
  PoolScope scope(&pool);
  { PoolVector<double> v(4096); }  // 32 KiB > cap: freed to the heap
  EXPECT_EQ(pool.stats().retained_bytes, 0u);
  { PoolVector<std::uint8_t> v(100); }  // under the cap: cached
  EXPECT_GT(pool.stats().retained_bytes, 0u);
}

TEST(BufferPool, TrimReleasesCachedBlocks) {
  BufferPool pool;
  PoolScope scope(&pool);
  { PoolVector<double> v(1000); }
  EXPECT_GT(pool.stats().retained_bytes, 0u);
  pool.trim();
  EXPECT_EQ(pool.stats().retained_bytes, 0u);
}

}  // namespace
}  // namespace hebs::util
