// Tests for integral images and paired window statistics (the engine
// under UIQI and SSIM), validated against naive computation.
#include <gtest/gtest.h>

#include <vector>

#include "hebs/advanced/quality.h"
#include "hebs/advanced/util.h"

namespace hebs::quality {
namespace {

std::vector<double> random_raster(int w, int h, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> v(static_cast<std::size_t>(w) * h);
  for (auto& x : v) x = rng.uniform();
  return v;
}

TEST(IntegralImage, SingleCellSums) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const IntegralImage ii(v, 2, 2);
  EXPECT_DOUBLE_EQ(ii.rect_sum(0, 0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(ii.rect_sum(1, 0, 1, 0), 2.0);
  EXPECT_DOUBLE_EQ(ii.rect_sum(0, 1, 0, 1), 3.0);
  EXPECT_DOUBLE_EQ(ii.rect_sum(1, 1, 1, 1), 4.0);
}

TEST(IntegralImage, FullRectIsTotalSum) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const IntegralImage ii(v, 2, 2);
  EXPECT_DOUBLE_EQ(ii.rect_sum(0, 0, 1, 1), 10.0);
}

TEST(IntegralImage, MatchesNaiveOnRandomData) {
  const int w = 13;
  const int h = 9;
  const auto v = random_raster(w, h, 1);
  const IntegralImage ii(v, w, h);
  auto naive = [&](int x0, int y0, int x1, int y1) {
    double acc = 0.0;
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        acc += v[static_cast<std::size_t>(y) * w + x];
      }
    }
    return acc;
  };
  for (int y0 = 0; y0 < h; y0 += 2) {
    for (int x0 = 0; x0 < w; x0 += 3) {
      const int x1 = std::min(w - 1, x0 + 4);
      const int y1 = std::min(h - 1, y0 + 3);
      EXPECT_NEAR(ii.rect_sum(x0, y0, x1, y1), naive(x0, y0, x1, y1),
                  1e-9);
    }
  }
}

TEST(IntegralImage, ValidatesSize) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_THROW(IntegralImage(v, 2, 2), hebs::util::InvalidArgument);
  EXPECT_THROW(IntegralImage(v, 0, 2), hebs::util::InvalidArgument);
}

/// Property sweep over raster shapes: PairStats window moments must match
/// direct per-window computation.
class PairStatsSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PairStatsSweep, MomentsMatchNaive) {
  const auto [w, h, block] = GetParam();
  const auto a = random_raster(w, h, 2);
  const auto b = random_raster(w, h, 3);
  const PairStats stats(a, b, w, h);

  for (int y = 0; y + block <= h; y += 3) {
    for (int x = 0; x + block <= w; x += 3) {
      const WindowMoments m = stats.window(x, y, block);
      double sa = 0;
      double sb = 0;
      double saa = 0;
      double sbb = 0;
      double sab = 0;
      for (int yy = y; yy < y + block; ++yy) {
        for (int xx = x; xx < x + block; ++xx) {
          const double va = a[static_cast<std::size_t>(yy) * w + xx];
          const double vb = b[static_cast<std::size_t>(yy) * w + xx];
          sa += va;
          sb += vb;
          saa += va * va;
          sbb += vb * vb;
          sab += va * vb;
        }
      }
      const double n = static_cast<double>(block) * block;
      EXPECT_NEAR(m.mean_a, sa / n, 1e-9);
      EXPECT_NEAR(m.mean_b, sb / n, 1e-9);
      EXPECT_NEAR(m.var_a, saa / n - (sa / n) * (sa / n), 1e-9);
      EXPECT_NEAR(m.var_b, sbb / n - (sb / n) * (sb / n), 1e-9);
      EXPECT_NEAR(m.cov_ab, sab / n - (sa / n) * (sb / n), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PairStatsSweep,
    ::testing::Values(std::make_tuple(8, 8, 8), std::make_tuple(16, 12, 4),
                      std::make_tuple(33, 17, 8),
                      std::make_tuple(64, 64, 16)));

TEST(PairStats, VarianceNeverNegative) {
  // Constant rasters stress fp cancellation in var = E[x²] - E[x]².
  std::vector<double> a(64, 0.3333333333333333);
  std::vector<double> b(64, 0.9999999999999999);
  const PairStats stats(a, b, 8, 8);
  const WindowMoments m = stats.window(0, 0, 8);
  EXPECT_GE(m.var_a, 0.0);
  EXPECT_GE(m.var_b, 0.0);
}

TEST(PairStats, MismatchedRastersThrow) {
  std::vector<double> a(64, 0.0);
  std::vector<double> b(32, 0.0);
  EXPECT_THROW(PairStats(a, b, 8, 8), hebs::util::InvalidArgument);
}

TEST(PairStats, CachedReferenceStatsAreBitIdentical) {
  // The reuse constructor (precomputed a-side ImageStats) must produce
  // exactly the moments of the two-span constructor — the contract the
  // DistortionEvaluator's reference caching relies on.
  std::vector<double> a(12 * 9);
  std::vector<double> b(12 * 9);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = 0.017 * static_cast<double>((i * 37) % 101);
    b[i] = 0.013 * static_cast<double>((i * 53) % 89);
  }
  const PairStats direct(a, b, 12, 9);
  const ImageStats a_stats(a, 12, 9);
  const PairStats cached(a_stats, a, b, 12, 9);
  for (int y = 0; y + 4 <= 9; ++y) {
    for (int x = 0; x + 4 <= 12; ++x) {
      const WindowMoments md = direct.window(x, y, 4);
      const WindowMoments mc = cached.window(x, y, 4);
      EXPECT_EQ(md.mean_a, mc.mean_a);
      EXPECT_EQ(md.mean_b, mc.mean_b);
      EXPECT_EQ(md.var_a, mc.var_a);
      EXPECT_EQ(md.var_b, mc.var_b);
      EXPECT_EQ(md.cov_ab, mc.cov_ab);
    }
  }
}

TEST(ImageStats, SizeMismatchThrows) {
  std::vector<double> a(64, 0.5);
  std::vector<double> b(64, 0.5);
  const ImageStats a_stats(a, 8, 8);
  EXPECT_THROW(PairStats(a_stats, a, b, 4, 16),
               hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::quality
