// Tests for the TFT matrix scan/charging simulation (§2, Fig. 1b/1c).
#include <gtest/gtest.h>

#include "hebs/advanced/display.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/quality.h"
#include "hebs/advanced/util.h"

namespace hebs::display {
namespace {

using hebs::image::GrayImage;

TEST(TftMatrix, StartsDark) {
  const TftMatrix matrix(8, 8);
  EXPECT_DOUBLE_EQ(matrix.transmittance(3, 3), 0.0);
  EXPECT_DOUBLE_EQ(matrix.emitted(1.0)(4, 4), 0.0);
}

TEST(TftMatrix, ConvergesToTheDrivenFrame) {
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kGirl, 32);
  TftMatrix matrix(32, 32);
  const auto driver = GrayscaleVoltage::linear();
  for (int f = 0; f < 20; ++f) matrix.scan_frame(img, driver);
  // After many refreshes the emitted luminance equals b * X/255 within
  // droop tolerance.
  const auto emitted = matrix.emitted(1.0);
  for (int y = 0; y < 32; y += 5) {
    for (int x = 0; x < 32; x += 5) {
      EXPECT_NEAR(emitted(x, y), img(x, y) / 255.0, 0.02);
    }
  }
}

TEST(TftMatrix, LcResponseCausesGhosting) {
  // Switch from a white frame to a black frame: with a slow LC the old
  // image persists for a few frames.
  TftMatrixOptions slow;
  slow.lc_response = 0.3;
  TftMatrix matrix(16, 16, slow);
  const auto driver = GrayscaleVoltage::linear();
  const GrayImage white(16, 16, 255);
  const GrayImage black(16, 16, 0);
  for (int f = 0; f < 10; ++f) matrix.scan_frame(white, driver);
  matrix.scan_frame(black, driver);
  EXPECT_GT(matrix.transmittance(8, 8), 0.5);  // ghost of the white frame
  for (int f = 0; f < 20; ++f) matrix.scan_frame(black, driver);
  EXPECT_LT(matrix.transmittance(8, 8), 0.02);
}

TEST(TftMatrix, FasterLcSettlesFaster) {
  const GrayImage white(16, 16, 255);
  const auto driver = GrayscaleVoltage::linear();
  TftMatrixOptions fast;
  fast.lc_response = 0.9;
  TftMatrixOptions slow;
  slow.lc_response = 0.3;
  TftMatrix fast_matrix(16, 16, fast);
  TftMatrix slow_matrix(16, 16, slow);
  fast_matrix.scan_frame(white, driver);
  slow_matrix.scan_frame(white, driver);
  EXPECT_GT(fast_matrix.transmittance(4, 4),
            slow_matrix.transmittance(4, 4));
}

TEST(TftMatrix, PartialScanRefreshesRowsRoundRobin) {
  TftMatrixOptions partial;
  partial.rows_per_frame = 4;  // quarter of an 16-row panel per frame
  partial.lc_response = 1.0;
  TftMatrix matrix(16, 16, partial);
  const auto driver = GrayscaleVoltage::linear();
  const GrayImage white(16, 16, 255);
  matrix.scan_frame(white, driver);
  // Rows 0..3 refreshed, row 15 still dark.
  EXPECT_GT(matrix.held_voltage(0, 1), 0.9);
  EXPECT_LT(matrix.held_voltage(0, 15), 0.1);
  // Three more frames complete the panel.
  for (int f = 0; f < 3; ++f) matrix.scan_frame(white, driver);
  EXPECT_GT(matrix.held_voltage(0, 15), 0.9);
}

TEST(TftMatrix, CapacitorDroopsBetweenRefreshes) {
  TftMatrixOptions droopy;
  droopy.hold_retention = 0.9;
  droopy.rows_per_frame = 1;  // a 2-row panel refreshed one row per frame
  droopy.lc_response = 1.0;
  TftMatrix matrix(2, 2, droopy);
  const auto driver = GrayscaleVoltage::linear();
  const GrayImage white(2, 2, 255);
  matrix.scan_frame(white, driver);  // refresh row 0
  const double right_after = matrix.held_voltage(0, 0);
  matrix.scan_frame(white, driver);  // refresh row 1; row 0 droops
  EXPECT_LT(matrix.held_voltage(0, 0), right_after);
  EXPECT_NEAR(matrix.held_voltage(0, 0), right_after * 0.9, 1e-9);
}

TEST(TftMatrix, ReprogrammedLadderChangesEmissionWithoutNewPixels) {
  // The HEBS hardware story: same frame, same scan — only the reference
  // voltages change, and the panel emits the transformed image.
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kSplash, 32);
  TftMatrix matrix(32, 32);
  GrayscaleVoltage boosted(
      {0.0, 4.0, 7.0, 9.0, 10.0}, 10.0);  // a compressive multi-slope ramp
  const auto linear = GrayscaleVoltage::linear();
  for (int f = 0; f < 10; ++f) matrix.scan_frame(img, linear);
  const double before = matrix.emitted(1.0).mean();
  for (int f = 0; f < 10; ++f) matrix.scan_frame(img, boosted);
  const double after = matrix.emitted(1.0).mean();
  EXPECT_GT(after, before * 1.2);  // brighter transfer, same pixels
}

TEST(TftMatrix, ValidatesArguments) {
  EXPECT_THROW(TftMatrix(0, 4), hebs::util::InvalidArgument);
  TftMatrixOptions bad;
  bad.lc_response = 0.0;
  EXPECT_THROW(TftMatrix(4, 4, bad), hebs::util::InvalidArgument);
  TftMatrix matrix(4, 4);
  const GrayImage wrong(8, 8, 0);
  EXPECT_THROW(matrix.scan_frame(wrong, GrayscaleVoltage::linear()),
               hebs::util::InvalidArgument);
  EXPECT_THROW((void)matrix.emitted(1.5), hebs::util::InvalidArgument);
  EXPECT_THROW((void)matrix.transmittance(4, 0),
               hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::display
