// Tests for the display-interface bus encoding substrate (refs [2][3]).
#include <gtest/gtest.h>

#include <bit>

#include "hebs/advanced/bus.h"
#include "hebs/advanced/histogram.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/util.h"

namespace hebs::bus {
namespace {

using hebs::image::GrayImage;
using hebs::image::UsidId;

std::vector<std::uint8_t> random_pixels(std::size_t n, std::uint64_t seed) {
  hebs::util::Rng rng(seed);
  std::vector<std::uint8_t> out(n);
  for (auto& p : out) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return out;
}

/// Every encoder must invert itself exactly.
class EncoderRoundTrip : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<BusEncoder> make_encoder() const {
    switch (GetParam()) {
      case 0: return std::make_unique<RawEncoder>();
      case 1: return std::make_unique<DifferentialEncoder>();
      case 2: return std::make_unique<BusInvertEncoder>();
      case 3: return std::make_unique<GrayCodeEncoder>();
      default: return std::make_unique<LiwtEncoder>();
    }
  }
};

TEST_P(EncoderRoundTrip, DecodeInvertsEncode) {
  const auto encoder = make_encoder();
  for (std::uint64_t seed : {1, 2, 3}) {
    const auto pixels = random_pixels(512, seed);
    const auto words = encoder->encode(pixels);
    const auto back = encoder->decode(words);
    EXPECT_EQ(back, pixels) << encoder->name();
  }
}

TEST_P(EncoderRoundTrip, WordsFitTheBusWidth) {
  const auto encoder = make_encoder();
  const auto pixels = random_pixels(256, 7);
  for (std::uint16_t w : encoder->encode(pixels)) {
    EXPECT_LT(w, 1u << encoder->bus_width()) << encoder->name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllEncoders, EncoderRoundTrip,
                         ::testing::Range(0, 5));

TEST(Measure, CountsInterWordFlips) {
  // 0x00 -> 0xFF flips all 8 wires; 0xFF -> 0xFF flips none.
  const std::vector<std::uint16_t> words = {0x00, 0xFF, 0xFF};
  const BusStats stats = measure(words, 8);
  EXPECT_EQ(stats.inter_word_transitions, 8u);
  EXPECT_EQ(stats.words, 3u);
}

TEST(Measure, CountsIntraWordTransitions) {
  // 0b0101010101 has 9 internal transitions on 10 wires.
  EXPECT_EQ(LiwtEncoder::intra_transitions(0b0101010101, 10), 9);
  EXPECT_EQ(LiwtEncoder::intra_transitions(0b0000000000, 10), 0);
  EXPECT_EQ(LiwtEncoder::intra_transitions(0b1111100000, 10), 1);
}

TEST(Measure, EnergyWeightsCoupling) {
  BusStats stats;
  stats.inter_word_transitions = 10;
  stats.intra_word_transitions = 4;
  EXPECT_DOUBLE_EQ(stats.energy(0.0), 10.0);
  EXPECT_DOUBLE_EQ(stats.energy(0.5), 12.0);
}

TEST(GrayCode, SmoothRampFlipsOneWirePerStep) {
  // A ramp changes by 1 per pixel: the Gray code flips exactly one wire
  // per step, while raw binary flips up to 8 at carry boundaries.
  std::vector<std::uint8_t> ramp(256);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<std::uint8_t>(i);
  }
  const auto raw = measure(RawEncoder().encode(ramp), 8);
  const auto gray = measure(GrayCodeEncoder().encode(ramp), 8);
  EXPECT_EQ(gray.inter_word_transitions, 255u);  // one per step
  EXPECT_LT(gray.inter_word_transitions, raw.inter_word_transitions);
}

TEST(GrayCode, AdjacentValuesAlwaysDifferInOneWire) {
  const GrayCodeEncoder enc;
  for (int v = 0; v < 255; ++v) {
    const auto words = enc.encode(std::vector<std::uint8_t>{
        static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v + 1)});
    EXPECT_EQ(std::popcount(static_cast<unsigned>(words[0] ^ words[1])), 1)
        << v;
  }
}

TEST(Differential, ConcentratesOnesForSmoothContent) {
  // XOR deltas of a smooth scanline have few set bits (low coupling).
  std::vector<std::uint8_t> ramp(256);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<std::uint8_t>(i);
  }
  const auto words = DifferentialEncoder().encode(ramp);
  std::uint64_t ones = 0;
  for (std::uint16_t w : words) {
    ones += static_cast<std::uint64_t>(std::popcount(static_cast<unsigned>(w)));
  }
  // Average delta popcount for +1 steps is < 2 bits.
  EXPECT_LT(ones, 2u * words.size());
}

TEST(BusInvert, NeverFlipsMoreThanHalfTheBusPlusFlag) {
  const auto pixels = random_pixels(1024, 11);
  const auto words = BusInvertEncoder().encode(pixels);
  std::uint16_t prev = 0;
  for (std::uint16_t w : words) {
    const int flips = std::popcount(static_cast<unsigned>((w ^ prev) & 0x1FF));
    EXPECT_LE(flips, 5);  // <= 4 payload flips + the invert wire
    prev = w;
  }
}

TEST(BusInvert, ReducesTransitionsOnRandomData) {
  const auto pixels = random_pixels(4096, 13);
  const auto raw = measure(RawEncoder().encode(pixels), 8);
  const auto inv = measure(BusInvertEncoder().encode(pixels), 9);
  EXPECT_LT(inv.inter_word_transitions, raw.inter_word_transitions);
}

TEST(Liwt, CodewordsHaveFewIntraTransitions) {
  // 10 wires offer 2 + 18 + 72 = 92 codewords with <= 2 internal
  // transitions and 168 more with 3, so 256 values fit within <= 3 —
  // versus up to 7 for raw 8-bit values.
  const LiwtEncoder encoder;
  const auto pixels = random_pixels(512, 17);
  const auto words = encoder.encode(pixels);
  for (std::uint16_t w : words) {
    EXPECT_LE(LiwtEncoder::intra_transitions(w, 10), 3);
  }
}

TEST(Liwt, FrequencyTrainingFavorsCommonValues) {
  // Value 200 dominates: it must receive a codeword with zero intra
  // transitions (all-zeros or all-ones pattern family).
  std::vector<std::uint64_t> freq(256, 1);
  freq[200] = 1000000;
  const LiwtEncoder encoder(freq);
  const auto words = encoder.encode(std::vector<std::uint8_t>{200});
  EXPECT_EQ(LiwtEncoder::intra_transitions(words[0], 10), 0);
}

TEST(Liwt, RejectsForeignCodewords) {
  const LiwtEncoder encoder;
  // 0b1010101010 has 9 transitions — far beyond the assigned set.
  const std::vector<std::uint16_t> bogus = {0b1010101010};
  EXPECT_THROW((void)encoder.decode(bogus), hebs::util::Error);
}

TEST(Liwt, ValidatesFrequencyTableSize) {
  std::vector<std::uint64_t> wrong(100, 1);
  EXPECT_THROW(LiwtEncoder{wrong}, hebs::util::InvalidArgument);
}

TEST(Transmit, AccumulatesOverScanlines) {
  const auto img = hebs::image::make_usid(UsidId::kLena, 64);
  const RawEncoder raw;
  const BusStats stats = transmit(img, raw);
  EXPECT_EQ(stats.words, img.size());
  EXPECT_GT(stats.inter_word_transitions, 0u);
}

TEST(Transmit, GrayCodeBeatsRawOnNaturalImages) {
  // The ref [2] premise: spatial locality makes neighbouring pixels
  // close in value, and the Gray code turns small value distance into
  // fewer wire flips.  On noisy synthetic stills the margin is modest
  // but must be strictly positive.
  const auto img = hebs::image::make_usid(UsidId::kGirl, 64);
  const auto raw = transmit(img, RawEncoder());
  const auto gray = transmit(img, GrayCodeEncoder());
  EXPECT_LT(gray.inter_word_transitions, raw.inter_word_transitions);
}

TEST(Transmit, DifferentialSavesEnergyOnNaturalImages) {
  const auto img = hebs::image::make_usid(UsidId::kGirl, 64);
  const auto raw = transmit(img, RawEncoder());
  const auto diff = transmit(img, DifferentialEncoder());
  EXPECT_LT(diff.energy(0.5), raw.energy(0.5) * 0.95);
}

TEST(Transmit, LiwtCutsCouplingEnergyOnNaturalImages) {
  const auto img = hebs::image::make_usid(UsidId::kPeppers, 64);
  const auto hist = hebs::histogram::Histogram::from_image(img);
  std::vector<std::uint64_t> freq(256);
  for (int i = 0; i < 256; ++i) {
    freq[static_cast<std::size_t>(i)] = hist.count(i);
  }
  const auto raw = transmit(img, RawEncoder());
  const auto liwt = transmit(img, LiwtEncoder(freq));
  EXPECT_LT(liwt.intra_word_transitions,
            raw.intra_word_transitions / 2);
}

TEST(Transmit, RejectsEmptyFrames) {
  GrayImage empty;
  EXPECT_THROW((void)transmit(empty, RawEncoder()),
               hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::bus
