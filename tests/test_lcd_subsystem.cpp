// Integration tests for the end-to-end LCD subsystem: the software pixel
// path and the hardware ladder path must display the same luminance.
#include <gtest/gtest.h>

#include <cmath>

#include "hebs/advanced/core.h"
#include "hebs/advanced/display.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/quality.h"
#include "hebs/advanced/util.h"

namespace hebs::display {
namespace {

using hebs::image::GrayImage;
using hebs::image::UsidId;

TEST(LcdSubsystem, ResetDisplaysTheOriginal) {
  auto sys = LcdSubsystem::lp064v1();
  sys.reset();
  const auto img = hebs::image::make_usid(UsidId::kLena, 32);
  const auto result = sys.display(img);
  EXPECT_DOUBLE_EQ(result.beta, 1.0);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      EXPECT_NEAR(result.luminance(x, y), img(x, y) / 255.0, 1e-9);
    }
  }
}

TEST(LcdSubsystem, DimmingReducesPower) {
  auto sys = LcdSubsystem::lp064v1();
  const auto img = hebs::image::make_usid(UsidId::kPeppers, 32);
  sys.reset();
  const double full = sys.display(img).power.total();
  sys.configure(hebs::transform::PwlCurve({{0.0, 0.0}, {1.0, 0.6}}), 0.6,
                DeploymentMode::kSoftwareTransform);
  const double dimmed = sys.display(img).power.total();
  EXPECT_LT(dimmed, full * 0.75);
}

/// The paper's central hardware claim: reprogramming the reference
/// ladder (Eq. 10) is equivalent to per-pixel software remapping.  Sweep
/// several images and backlight factors.
class PathEquivalence
    : public ::testing::TestWithParam<std::tuple<UsidId, double>> {};

TEST_P(PathEquivalence, SoftwareAndHardwarePathsAgree) {
  const auto [id, beta] = GetParam();
  const auto img = hebs::image::make_usid(id, 48);

  // A HEBS-style transform compressed into [0, beta].
  const auto hist = hebs::histogram::Histogram::from_image(img);
  const int gmax = static_cast<int>(beta * 255.0);
  const auto phi =
      hebs::core::ghe_transform(hist, hebs::core::GheTarget{0, gmax});
  const auto lambda = hebs::core::plc_coarsen(phi, 8).curve;

  HierarchicalLadderOptions ladder_opts;
  ladder_opts.bands = 64;    // fine grid so grid error is negligible
  ladder_opts.dac_bits = 12;
  LcdSubsystem sw(hebs::power::LcdSubsystemPower::lp064v1(), ladder_opts);
  LcdSubsystem hw(hebs::power::LcdSubsystemPower::lp064v1(), ladder_opts);
  sw.configure(lambda, beta, DeploymentMode::kSoftwareTransform);
  hw.configure(lambda, beta, DeploymentMode::kHardwareLadder);

  const auto lum_sw = sw.display(img).luminance;
  const auto lum_hw = hw.display(img).luminance;
  // Agreement within quantization bounds (8-bit LUT + DAC + band grid).
  const double rms = hebs::quality::mse(lum_sw, lum_hw);
  EXPECT_LT(std::sqrt(rms), 0.01)
      << "image " << hebs::image::usid_name(id) << " beta " << beta;
}

INSTANTIATE_TEST_SUITE_P(
    ImagesAndBetas, PathEquivalence,
    ::testing::Combine(::testing::Values(UsidId::kLena, UsidId::kBaboon,
                                         UsidId::kSplash, UsidId::kPout),
                       ::testing::Values(0.4, 0.6, 0.8)));

TEST(LcdSubsystem, HardwareModeNeedsNoPixelManipulation) {
  // The displayed luminance in hardware mode must come from the original
  // pixel values — verify the ladder transfer does the work.
  auto sys = LcdSubsystem::lp064v1();
  const auto lambda =
      hebs::transform::PwlCurve({{0.0, 0.0}, {1.0, 0.5}});
  sys.configure(lambda, 0.5, DeploymentMode::kHardwareLadder);
  EXPECT_EQ(sys.mode(), DeploymentMode::kHardwareLadder);
  GrayImage img(1, 1, 255);
  // λ(1) = 0.5; hardware: t = min(1, 0.5/0.5) = 1, luminance = β·1 = 0.5.
  EXPECT_NEAR(sys.display(img).luminance(0, 0), 0.5, 0.01);
}

TEST(LcdSubsystem, PowerAccountsForCompensatedTransmittance) {
  // In hardware mode the panel drives t = λ/β which is brighter than λ,
  // so panel power must exceed the naive λ-based estimate.
  auto sys = LcdSubsystem::lp064v1();
  const auto img = hebs::image::make_usid(UsidId::kSail, 32);
  const auto lambda =
      hebs::transform::PwlCurve({{0.0, 0.0}, {1.0, 0.5}});
  sys.configure(lambda, 0.5, DeploymentMode::kHardwareLadder);
  const auto hw_power = sys.display(img).power;
  const auto naive_panel =
      sys.power_model().panel().image_power(lambda.to_lut().apply(img));
  EXPECT_GT(hw_power.panel_watts, naive_panel);
}

TEST(LcdSubsystem, ConfigureValidatesBeta) {
  auto sys = LcdSubsystem::lp064v1();
  EXPECT_THROW(sys.configure(hebs::transform::PwlCurve::identity(), 0.0,
                             DeploymentMode::kSoftwareTransform),
               hebs::util::InvalidArgument);
}

TEST(LcdSubsystem, NonMonotoneTransformRejectedInHardwareMode) {
  auto sys = LcdSubsystem::lp064v1();
  const hebs::transform::PwlCurve down({{0.0, 0.8}, {1.0, 0.1}});
  EXPECT_THROW(
      sys.configure(down, 0.8, DeploymentMode::kHardwareLadder),
      hebs::util::HardwareError);
}

}  // namespace
}  // namespace hebs::display
