// Unit tests for hebs::util — RNG, math helpers, CSV writer, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "hebs/advanced/util.h"

namespace hebs::util {
namespace {

TEST(Rng, IsDeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next_u32() != b.next_u32()) ++differing;
  }
  EXPECT_GT(differing, 24);
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsNearOneHalf) {
  Rng rng(11);
  double acc = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / kN, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsAreStandardNormal) {
  Rng rng(13);
  constexpr int kN = 40000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.05);
}

TEST(Rng, GaussianWithParamsShiftsAndScales) {
  Rng rng(17);
  constexpr int kN = 40000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.gaussian(5.0, 0.1);
  EXPECT_NEAR(sum / kN, 5.0, 0.01);
}

TEST(Splitmix, ProducesDistinctStream) {
  std::uint64_t s = 99;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(MathUtil, ClampWorksAtAndBeyondBounds) {
  EXPECT_EQ(clamp(-1.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(clamp(2.0, 0.0, 1.0), 1.0);
  EXPECT_EQ(clamp(0.25, 0.0, 1.0), 0.25);
  EXPECT_EQ(clamp01(-5.0), 0.0);
  EXPECT_EQ(clamp01(5.0), 1.0);
}

TEST(MathUtil, LerpEndpointsAndMidpoint) {
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 4.0, 0.5), 3.0);
}

TEST(MathUtil, MeanAndVariance) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(MathUtil, CovarianceOfPerfectlyCorrelatedSeries) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0};
  // cov(x, 2x) = 2 var(x); var = 2/3.
  EXPECT_NEAR(covariance(xs, ys), 2.0 * variance(xs), 1e-12);
}

TEST(MathUtil, CovarianceSizeMismatchThrows) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> ys = {1.0};
  EXPECT_THROW(covariance(xs, ys), InvalidArgument);
}

TEST(MathUtil, PercentileInterpolates) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
}

TEST(MathUtil, PercentileRejectsBadInput) {
  EXPECT_THROW(percentile(std::vector<double>{}, 50.0), InvalidArgument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(percentile(xs, -1.0), InvalidArgument);
  EXPECT_THROW(percentile(xs, 101.0), InvalidArgument);
}

TEST(MathUtil, RmsDiff) {
  const std::vector<double> xs = {0.0, 0.0};
  const std::vector<double> ys = {3.0, 4.0};
  EXPECT_NEAR(rms_diff(xs, ys), std::sqrt(12.5), 1e-12);
  EXPECT_THROW(rms_diff(xs, std::vector<double>{1.0}), InvalidArgument);
}

TEST(MathUtil, LinspaceEndpointsExact) {
  const auto xs = linspace(0.0, 1.0, 11);
  ASSERT_EQ(xs.size(), 11u);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 1.0);
  EXPECT_NEAR(xs[5], 0.5, 1e-12);
  EXPECT_THROW(linspace(0.0, 1.0, 1), InvalidArgument);
}

TEST(Csv, WritesRowsAndEscapes) {
  const std::string path = ::testing::TempDir() + "hebs_csv_test.csv";
  {
    CsvWriter csv(path);
    csv.write_row({"name", "value"});
    csv.write_row({"plain", CsvWriter::num(1.5)});
    csv.write_row({"with,comma", "say \"hi\""});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,1.5");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",\"say \"\"hi\"\"\"");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv"), IoError);
}

TEST(Table, RendersAlignedColumns) {
  ConsoleTable t({"Name", "Saving"});
  t.add_row({"Lena", "47.53"});
  t.add_separator();
  t.add_row({"Average", "45.88"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| Name"), std::string::npos);
  EXPECT_NE(s.find("| Lena"), std::string::npos);
  EXPECT_NE(s.find("| Average"), std::string::npos);
  EXPECT_EQ(t.row_count(), 3u);  // separator counts as a row slot
}

TEST(Table, RejectsMismatchedRowWidth) {
  ConsoleTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(Table, NumFormatsFixedDecimals) {
  EXPECT_EQ(ConsoleTable::num(45.878, 2), "45.88");
  EXPECT_EQ(ConsoleTable::num(45.0, 1), "45.0");
}

TEST(Error, RequireMacroThrowsWithContext) {
  try {
    HEBS_REQUIRE(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

}  // namespace
}  // namespace hebs::util
