// Facade tests for the first-class color workload: RGB frame/batch/
// video processing through hebs::Session, mode selection, bit-stability
// across thread counts and the temporal fast path, and the color error
// paths.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "hebs/advanced/core.h"
#include "hebs/hebs.h"
#include "image/synthetic.h"

namespace {

using hebs::FrameRequest;
using hebs::FrameResult;
using hebs::ImageView;
using hebs::Session;
using hebs::SessionConfig;
using hebs::StatusCode;
using hebs::image::RgbImage;
using hebs::image::UsidId;

ImageView view_of(const RgbImage& img) {
  return ImageView::rgb8(img.data().data(), img.width(), img.height());
}

FrameRequest color_request(const RgbImage& img, double dmax = 10.0) {
  FrameRequest request{view_of(img), dmax};
  request.color_output = true;
  return request;
}

bool same_rgb(const hebs::OwnedRgbImage& a, const hebs::OwnedRgbImage& b) {
  return a.width() == b.width() && a.height() == b.height() &&
         a.pixels() == b.pixels();
}

TEST(ColorSession, SharedCurveModeMatchesTheCorePath) {
  const RgbImage rgb = hebs::image::make_usid_color(UsidId::kPeppers, 48);
  auto session =
      Session::create(SessionConfig().color_mode("shared-curve"));
  ASSERT_TRUE(session.has_value());
  auto result = session->process(color_request(rgb));
  ASSERT_TRUE(result.has_value()) << result.status().to_string();

  const auto core = hebs::core::color_hebs_exact(
      rgb, 10.0, {}, hebs::power::LcdSubsystemPower::lp064v1(),
      hebs::core::ColorMode::kSharedCurve);
  EXPECT_EQ(result->beta, core.luma.point.beta);
  EXPECT_EQ(result->distortion_percent, core.distortion_percent);
  EXPECT_EQ(result->hue_error, core.hue_error);
  ASSERT_EQ(result->displayed_rgb.pixels().size(),
            core.transformed.data().size());
  EXPECT_EQ(std::memcmp(result->displayed_rgb.pixels().data(),
                        core.transformed.data().data(),
                        core.transformed.data().size()),
            0);
}

TEST(ColorSession, ColorOutputKeepsTheLumaDecisionBitIdentical) {
  const RgbImage rgb = hebs::image::make_usid_color(UsidId::kSail, 48);
  const auto luma = rgb.to_luma();
  auto session = Session::create(SessionConfig());
  ASSERT_TRUE(session.has_value());
  auto color = session->process(color_request(rgb));
  auto gray = session->process(
      {ImageView::gray8(luma.pixels().data(), luma.width(), luma.height()),
       10.0});
  ASSERT_TRUE(color.has_value()) << color.status().to_string();
  ASSERT_TRUE(gray.has_value());
  EXPECT_EQ(color->beta, gray->beta);
  EXPECT_EQ(color->g_min, gray->g_min);
  EXPECT_EQ(color->g_max, gray->g_max);
  EXPECT_EQ(color->distortion_percent, gray->distortion_percent);
  EXPECT_EQ(color->saving_percent, gray->saving_percent);
  EXPECT_EQ(color->displayed, gray->displayed);
  EXPECT_FALSE(color->displayed_rgb.empty());
  EXPECT_TRUE(gray->displayed_rgb.empty());
}

TEST(ColorSession, BothModesOnAOnePixelFrame) {
  RgbImage tiny(1, 1);
  tiny.set(0, 0, {180, 90, 45});
  for (const char* mode : {"shared-curve", "luma-ratio"}) {
    // The windowed default metric is undefined below its 8x8 block, so
    // the 1x1 edge case runs on rmse (defined at every size).
    auto session =
        Session::create(SessionConfig().color_mode(mode).metric("rmse"));
    ASSERT_TRUE(session.has_value());
    auto result = session->process(color_request(tiny));
    ASSERT_TRUE(result.has_value())
        << mode << ": " << result.status().to_string();
    EXPECT_EQ(result->displayed_rgb.width(), 1);
    EXPECT_EQ(result->displayed_rgb.height(), 1);
    ASSERT_EQ(result->displayed_rgb.pixels().size(), 3u);
    EXPECT_GE(result->hue_error, 0.0);
  }
  // Under the windowed default metric the same frame must come back as
  // a typed status (the facade never aborts), not a crash.
  auto session = Session::create(SessionConfig());
  ASSERT_TRUE(session.has_value());
  auto result = session->process(color_request(tiny));
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(ColorSession, AllBlackFrameHasZeroHueError) {
  const RgbImage black(8, 8);  // every chromaticity sample is skipped
  for (const char* mode : {"shared-curve", "luma-ratio"}) {
    auto session = Session::create(SessionConfig().color_mode(mode));
    ASSERT_TRUE(session.has_value());
    auto result = session->process(color_request(black));
    ASSERT_TRUE(result.has_value()) << result.status().to_string();
    EXPECT_EQ(result->hue_error, 0.0) << mode;
    EXPECT_FALSE(result->displayed_rgb.empty());
  }
}

TEST(ColorSession, SaturatingInputStaysInRangeInBothModes) {
  // Red-dominant content drives the scaled channel to the 8-bit rail in
  // luma-ratio mode; outputs must clamp, never wrap, in both modes.
  RgbImage hot(8, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      hot.set(x, y, {250, static_cast<std::uint8_t>(10 + x),
                     static_cast<std::uint8_t>(5 + y)});
    }
  }
  for (const char* mode : {"shared-curve", "luma-ratio"}) {
    auto session = Session::create(SessionConfig().color_mode(mode));
    ASSERT_TRUE(session.has_value());
    auto result = session->process(color_request(hot, 30.0));
    ASSERT_TRUE(result.has_value()) << result.status().to_string();
    EXPECT_EQ(result->displayed_rgb.pixels().size(), 3u * 8 * 8);
  }
}

TEST(ColorSession, GrayViewWithColorOutputIsRejected) {
  const auto gray = hebs::image::make_usid(UsidId::kLena, 16);
  auto session = Session::create(SessionConfig());
  ASSERT_TRUE(session.has_value());
  FrameRequest request{
      ImageView::gray8(gray.pixels().data(), gray.width(), gray.height()),
      10.0};
  request.color_output = true;
  auto result = session->process(request);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidOption);
}

TEST(ColorSession, UnknownColorModeIsRejectedAtCreate) {
  auto session = Session::create(SessionConfig().color_mode("vivid"));
  ASSERT_FALSE(session.has_value());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidOption);
}

TEST(ColorSession, BatchMatchesPerFrameAcrossThreadCountsAndModes) {
  std::vector<RgbImage> images;
  images.push_back(hebs::image::make_usid_color(UsidId::kPeppers, 32));
  images.push_back(hebs::image::make_usid_color(UsidId::kAutumn, 32));
  images.push_back(hebs::image::make_usid_color(UsidId::kSail, 32));
  std::vector<ImageView> frames;
  for (const auto& img : images) frames.push_back(view_of(img));

  for (const char* mode : {"shared-curve", "luma-ratio"}) {
    // Per-frame reference on a single-thread session.
    auto reference_session =
        Session::create(SessionConfig().color_mode(mode).threads(1));
    ASSERT_TRUE(reference_session.has_value());
    std::vector<FrameResult> reference;
    for (const auto& img : images) {
      auto r = reference_session->process(color_request(img));
      ASSERT_TRUE(r.has_value()) << r.status().to_string();
      reference.push_back(std::move(*r));
    }
    for (int threads : {1, 4}) {
      auto session = Session::create(
          SessionConfig().color_mode(mode).threads(threads));
      ASSERT_TRUE(session.has_value());
      auto batch = session->process_batch_color(frames, 10.0);
      ASSERT_TRUE(batch.has_value()) << batch.status().to_string();
      ASSERT_EQ(batch->size(), images.size());
      for (std::size_t i = 0; i < batch->size(); ++i) {
        EXPECT_EQ((*batch)[i].beta, reference[i].beta);
        EXPECT_EQ((*batch)[i].hue_error, reference[i].hue_error);
        EXPECT_TRUE(
            same_rgb((*batch)[i].displayed_rgb, reference[i].displayed_rgb))
            << mode << " threads=" << threads << " frame " << i;
      }
    }
  }
}

TEST(ColorSession, BatchCoversCurveAndBaselinePolicies) {
  // The non-exact policies route differently inside process_batch_color
  // (hebs-curve through the engine pool, baselines serially); each must
  // match the per-frame color path bit-for-bit.
  std::vector<RgbImage> images;
  images.push_back(hebs::image::make_usid_color(UsidId::kPeppers, 32));
  images.push_back(hebs::image::make_usid_color(UsidId::kSail, 32));
  std::vector<ImageView> frames;
  for (const auto& img : images) frames.push_back(view_of(img));

  const auto album = hebs::image::usid_album(32);
  const auto curve = hebs::core::DistortionCurve::characterize(
      album, hebs::core::DistortionCurve::default_ranges(), {},
      hebs::power::LcdSubsystemPower::lp064v1());
  const std::string curve_path =
      ::testing::TempDir() + "hebs_color_batch_curve.csv";
  curve.save(curve_path);

  std::vector<SessionConfig> configs;
  configs.push_back(
      SessionConfig().policy("hebs-curve").curve_path(curve_path).threads(2));
  configs.push_back(SessionConfig().policy("dls"));
  for (const auto& config : configs) {
    auto session = Session::create(config);
    ASSERT_TRUE(session.has_value());
    auto batch = session->process_batch_color(frames, 10.0);
    ASSERT_TRUE(batch.has_value())
        << config.policy() << ": " << batch.status().to_string();
    ASSERT_EQ(batch->size(), images.size());
    for (std::size_t i = 0; i < images.size(); ++i) {
      auto single = session->process(color_request(images[i]));
      ASSERT_TRUE(single.has_value()) << single.status().to_string();
      EXPECT_EQ((*batch)[i].beta, single->beta) << config.policy();
      EXPECT_EQ((*batch)[i].hue_error, single->hue_error) << config.policy();
      EXPECT_TRUE(same_rgb((*batch)[i].displayed_rgb, single->displayed_rgb))
          << config.policy() << " frame " << i;
    }
  }
}

TEST(ColorSession, BatchRejectsGrayFramesByIndex) {
  const RgbImage rgb = hebs::image::make_usid_color(UsidId::kLena, 16);
  const auto gray = hebs::image::make_usid(UsidId::kLena, 16);
  auto session = Session::create(SessionConfig());
  ASSERT_TRUE(session.has_value());
  const std::vector<ImageView> frames = {
      view_of(rgb),
      ImageView::gray8(gray.pixels().data(), gray.width(), gray.height())};
  auto batch = session->process_batch_color(frames, 10.0);
  ASSERT_FALSE(batch.has_value());
  EXPECT_EQ(batch.status().code(), StatusCode::kInvalidOption);
  EXPECT_NE(batch.status().message().find("frame 1"), std::string::npos);
}

TEST(ColorSession, VideoColorIsBitStableAcrossThreadsAndTemporalReuse) {
  // Static block + a scene cut to a second static block: the temporal
  // fast path engages on the repeats and must change nothing.
  std::vector<RgbImage> clip;
  const RgbImage a = hebs::image::make_usid_color(UsidId::kPeppers, 32);
  const RgbImage b = hebs::image::make_usid_color(UsidId::kAutumn, 32);
  for (int i = 0; i < 4; ++i) clip.push_back(a);
  for (int i = 0; i < 4; ++i) clip.push_back(b);
  std::vector<ImageView> frames;
  for (const auto& img : clip) frames.push_back(view_of(img));

  auto make = [](int threads, bool temporal) {
    return Session::create(SessionConfig()
                               .color_mode("luma-ratio")
                               .threads(threads)
                               .temporal_reuse(temporal));
  };
  auto reference_session = make(1, false);
  ASSERT_TRUE(reference_session.has_value());
  auto reference = reference_session->process_video_color(frames, 10.0);
  ASSERT_TRUE(reference.has_value()) << reference.status().to_string();
  ASSERT_EQ(reference->size(), clip.size());

  for (int threads : {1, 2}) {
    for (bool temporal : {false, true}) {
      auto session = make(threads, temporal);
      ASSERT_TRUE(session.has_value());
      auto results = session->process_video_color(frames, 10.0);
      ASSERT_TRUE(results.has_value()) << results.status().to_string();
      ASSERT_EQ(results->size(), reference->size());
      for (std::size_t i = 0; i < results->size(); ++i) {
        EXPECT_EQ((*results)[i].beta, (*reference)[i].beta);
        EXPECT_EQ((*results)[i].scene_cut, (*reference)[i].scene_cut);
        EXPECT_EQ((*results)[i].frame.hue_error,
                  (*reference)[i].frame.hue_error);
        EXPECT_TRUE(same_rgb((*results)[i].frame.displayed_rgb,
                             (*reference)[i].frame.displayed_rgb))
            << "threads=" << threads << " temporal=" << temporal
            << " frame " << i;
      }
    }
  }
}

TEST(ColorSession, VideoColorMatchesGrayVideoDecisions) {
  std::vector<RgbImage> clip;
  for (int i = 0; i < 3; ++i) {
    clip.push_back(hebs::image::make_usid_color(UsidId::kSail, 32));
  }
  std::vector<hebs::image::GrayImage> lumas;
  for (const auto& img : clip) lumas.push_back(img.to_luma());
  std::vector<ImageView> color_frames;
  std::vector<ImageView> gray_frames;
  for (const auto& img : clip) color_frames.push_back(view_of(img));
  for (const auto& l : lumas) {
    gray_frames.push_back(
        ImageView::gray8(l.pixels().data(), l.width(), l.height()));
  }
  auto session = Session::create(SessionConfig().threads(1));
  ASSERT_TRUE(session.has_value());
  auto color = session->process_video_color(color_frames, 10.0);
  auto gray = session->process_video(gray_frames, 10.0);
  ASSERT_TRUE(color.has_value()) << color.status().to_string();
  ASSERT_TRUE(gray.has_value());
  ASSERT_EQ(color->size(), gray->size());
  for (std::size_t i = 0; i < color->size(); ++i) {
    EXPECT_EQ((*color)[i].beta, (*gray)[i].beta);
    EXPECT_EQ((*color)[i].raw_beta, (*gray)[i].raw_beta);
    EXPECT_EQ((*color)[i].frame.displayed, (*gray)[i].frame.displayed);
  }
}

}  // namespace
