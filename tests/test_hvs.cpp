// Tests for the human-visual-system front end.
#include <gtest/gtest.h>

#include "hebs/advanced/image.h"
#include "hebs/advanced/quality.h"

namespace hebs::quality {
namespace {

TEST(Hvs, LightnessEndpoints) {
  EXPECT_NEAR(lightness(0.0), 0.0, 1e-12);
  EXPECT_NEAR(lightness(1.0), 1.0, 1e-9);
}

TEST(Hvs, LightnessIsMonotone) {
  double prev = -1.0;
  for (double y = 0.0; y <= 1.0; y += 0.01) {
    const double l = lightness(y);
    EXPECT_GT(l, prev);
    prev = l;
  }
}

TEST(Hvs, LightnessIsContinuousAtTheKnee) {
  constexpr double kKnee = 216.0 / 24389.0;
  EXPECT_NEAR(lightness(kKnee - 1e-9), lightness(kKnee + 1e-9), 1e-6);
}

TEST(Hvs, LightnessCompressesDarkDifferencesMore) {
  // Weber-Fechner: a fixed luminance step is a larger lightness step in
  // the dark than in the bright.
  const double dark_step = lightness(0.10) - lightness(0.05);
  const double bright_step = lightness(0.90) - lightness(0.85);
  EXPECT_GT(dark_step, 2.0 * bright_step);
}

TEST(Hvs, LightnessClampsOutOfRangeInputs) {
  EXPECT_DOUBLE_EQ(lightness(-0.5), lightness(0.0));
  EXPECT_DOUBLE_EQ(lightness(1.5), lightness(1.0));
}

TEST(Hvs, TransformKeepsOutputInUnitRange) {
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kLena, 64);
  const auto out = hvs_transform(img);
  for (double v : out.values()) {
    EXPECT_GE(v, -1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

TEST(Hvs, TransformPreservesShape) {
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kGirl, 48);
  const auto out = hvs_transform(img);
  EXPECT_EQ(out.width(), 48);
  EXPECT_EQ(out.height(), 48);
}

TEST(Hvs, CsfFilterSmoothsHighFrequencies) {
  // A checkerboard's local variance must drop after the CSF prefilter.
  hebs::image::GrayImage img(32, 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      img(x, y) = ((x + y) % 2 == 0) ? 0 : 255;
    }
  }
  HvsOptions with_filter;
  with_filter.csf_sigma = 1.0;
  HvsOptions no_filter;
  no_filter.csf_sigma = 0.0;
  const auto filtered = hvs_transform(img, with_filter);
  const auto raw = hvs_transform(img, no_filter);
  auto range_of = [](const hebs::image::FloatImage& f) {
    double lo = 1e9;
    double hi = -1e9;
    for (double v : f.values()) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return hi - lo;
  };
  EXPECT_LT(range_of(filtered), 0.5 * range_of(raw));
}

TEST(Hvs, LightnessMappingCanBeDisabled) {
  HvsOptions opts;
  opts.lightness_mapping = false;
  opts.csf_sigma = 0.0;
  hebs::image::FloatImage lum(8, 8, 0.5);
  const auto out = hvs_transform(lum, opts);
  for (double v : out.values()) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(Hvs, GaussianFilterPreservesFlatImages) {
  hebs::image::FloatImage lum(16, 16, 0.42);
  HvsOptions opts;
  opts.lightness_mapping = false;
  opts.csf_sigma = 2.0;
  const auto out = hvs_transform(lum, opts);
  for (double v : out.values()) EXPECT_NEAR(v, 0.42, 1e-9);
}

}  // namespace
}  // namespace hebs::quality
