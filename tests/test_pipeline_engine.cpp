// Tests for the batch/stream PipelineEngine: determinism across thread
// counts, bit-identity with the serial path, ordered flicker control.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "hebs/advanced/core.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/pipeline.h"
#include "pipeline/executor.h"
#include "hebs/advanced/util.h"

namespace hebs::pipeline {
namespace {

using hebs::image::GrayImage;
using hebs::image::UsidId;

const hebs::power::LcdSubsystemPower& model() {
  static const auto m = hebs::power::LcdSubsystemPower::lp064v1();
  return m;
}

std::vector<GrayImage> small_album(int count, int size) {
  const UsidId ids[] = {UsidId::kLena,    UsidId::kPeppers, UsidId::kBaboon,
                        UsidId::kGirl,    UsidId::kPout,    UsidId::kSail,
                        UsidId::kTrees,   UsidId::kSplash};
  std::vector<GrayImage> images;
  images.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    images.push_back(hebs::image::make_usid(ids[i % 8], size));
  }
  return images;
}

void expect_same_result(const core::HebsResult& a, const core::HebsResult& b) {
  EXPECT_EQ(a.point.beta, b.point.beta);
  EXPECT_EQ(a.lambda.points(), b.lambda.points());
  EXPECT_EQ(a.evaluation.distortion_percent, b.evaluation.distortion_percent);
  EXPECT_EQ(a.evaluation.saving_percent, b.evaluation.saving_percent);
  EXPECT_EQ(a.evaluation.transformed, b.evaluation.transformed);
}

TEST(Executor, RunsEveryIndexOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::vector<int> hits(100, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 4);
    ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Executor, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::vector<int> workers;
  pool.parallel_for(8, [&](std::size_t, int worker) {
    workers.push_back(worker);  // safe: inline execution, no concurrency
  });
  EXPECT_EQ(workers.size(), 8u);
  for (int w : workers) EXPECT_EQ(w, 0);
}

TEST(Executor, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [](std::size_t i, int) {
                          if (i == 7) {
                            throw hebs::util::InvalidArgument("boom");
                          }
                        }),
      hebs::util::InvalidArgument);
  // The pool survives a throwing task.
  int sum = 0;
  std::atomic<int> total{0};
  pool.parallel_for(10, [&total](std::size_t i, int) {
    total += static_cast<int>(i);
  });
  sum = total.load();
  EXPECT_EQ(sum, 45);
}

TEST(Engine, BatchIsBitIdenticalToSerial) {
  const auto images = small_album(6, 48);
  EngineOptions opts;
  opts.num_threads = 2;
  PipelineEngine engine(opts, model());
  const auto batch = engine.process_batch(images, 10.0);
  ASSERT_EQ(batch.size(), images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    expect_same_result(batch[i],
                       core::hebs_exact(images[i], 10.0, {}, model()));
  }
}

TEST(Engine, BatchInvariantAcrossThreadCounts) {
  const auto images = small_album(5, 48);
  std::vector<std::vector<core::HebsResult>> runs;
  for (int threads : {1, 2, 8}) {
    EngineOptions opts;
    opts.num_threads = threads;
    PipelineEngine engine(opts, model());
    EXPECT_EQ(engine.thread_count(), threads);
    runs.push_back(engine.process_batch(images, 10.0));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      expect_same_result(runs[r][i], runs[0][i]);
    }
  }
}

TEST(Engine, BatchAtRangeMatchesSerial) {
  const auto images = small_album(4, 48);
  EngineOptions opts;
  opts.num_threads = 2;
  PipelineEngine engine(opts, model());
  const auto batch = engine.process_batch_at_range(images, 150);
  for (std::size_t i = 0; i < images.size(); ++i) {
    expect_same_result(batch[i],
                       core::hebs_at_range(images[i], 150, {}, model()));
  }
}

TEST(Engine, EmptyBatchReturnsEmpty) {
  PipelineEngine engine;
  EXPECT_TRUE(engine.process_batch({}, 10.0).empty());
}

TEST(Engine, BatchPropagatesInvalidInput) {
  std::vector<GrayImage> images = small_album(2, 48);
  images.emplace_back();  // empty frame
  EngineOptions opts;
  opts.num_threads = 2;
  PipelineEngine engine(opts, model());
  EXPECT_THROW((void)engine.process_batch(images, 10.0),
               hebs::util::InvalidArgument);
}

core::VideoOptions fast_video_options(int threads) {
  core::VideoOptions opts;
  opts.d_max_percent = 10.0;
  opts.max_beta_step = 0.04;
  opts.num_threads = threads;
  return opts;
}

TEST(EngineStream, MatchesSerialControllerBitForBit) {
  const auto clip = hebs::image::make_video_clip(10, 48);

  // Serial reference: one controller fed frame by frame.
  core::VideoBacklightController serial(fast_video_options(1), model());
  std::vector<core::FrameDecision> expected;
  for (const auto& frame : clip) expected.push_back(serial.process(frame));

  EngineOptions eopts;
  eopts.num_threads = 4;
  PipelineEngine engine(eopts, model());
  const auto streamed = engine.process_stream(clip, fast_video_options(4));

  ASSERT_EQ(streamed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(streamed[i].raw_beta, expected[i].raw_beta) << "frame " << i;
    EXPECT_EQ(streamed[i].beta, expected[i].beta) << "frame " << i;
    EXPECT_EQ(streamed[i].scene_cut, expected[i].scene_cut) << "frame " << i;
    EXPECT_EQ(streamed[i].evaluation.distortion_percent,
              expected[i].evaluation.distortion_percent)
        << "frame " << i;
    EXPECT_EQ(streamed[i].evaluation.transformed,
              expected[i].evaluation.transformed)
        << "frame " << i;
  }
}

TEST(EngineStream, ProcessClipInvariantAcrossThreadCounts) {
  const auto clip = hebs::image::make_video_clip(8, 48);
  std::vector<std::vector<core::FrameDecision>> runs;
  for (int threads : {1, 2, 8}) {
    core::VideoBacklightController ctl(fast_video_options(threads), model());
    runs.push_back(ctl.process_clip(clip));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[r][i].beta, runs[0][i].beta);
      EXPECT_EQ(runs[r][i].scene_cut, runs[0][i].scene_cut);
      EXPECT_EQ(runs[r][i].evaluation.saving_percent,
                runs[0][i].evaluation.saving_percent);
    }
  }
}

TEST(EngineStream, FlickerStaysRateLimited) {
  const auto clip = hebs::image::make_video_clip(12, 48);
  const auto opts = fast_video_options(4);
  EngineOptions eopts;
  eopts.num_threads = 4;
  PipelineEngine engine(eopts, model());
  const auto decisions = engine.process_stream(clip, opts);
  EXPECT_EQ(decisions.size(), clip.size());
  EXPECT_LE(core::VideoBacklightController::max_flicker_step(decisions),
            opts.max_beta_step + 1e-9);
}

TEST(EngineStream, StreamingHistogramModeHonorsBetaLimits) {
  const auto clip = hebs::image::make_video_clip(10, 48);
  const auto opts = fast_video_options(2);
  EngineOptions eopts;
  eopts.num_threads = 2;
  eopts.use_streaming_histogram = true;
  eopts.streaming.decimation = 4;
  eopts.streaming.blend = 0.5;
  PipelineEngine engine(eopts, model());
  const auto decisions = engine.process_stream(clip, opts);
  ASSERT_EQ(decisions.size(), clip.size());
  EXPECT_LE(core::VideoBacklightController::max_flicker_step(decisions),
            opts.max_beta_step + 1e-9);
  for (const auto& d : decisions) {
    EXPECT_GT(d.beta, 0.0);
    EXPECT_LE(d.beta, 1.0);
  }
  // Deterministic: a second identical run reproduces every decision.
  PipelineEngine engine2(eopts, model());
  const auto again = engine2.process_stream(clip, opts);
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    EXPECT_EQ(again[i].beta, decisions[i].beta);
  }
}

}  // namespace
}  // namespace hebs::pipeline
