// Tests for multi-scale SSIM.
#include <gtest/gtest.h>

#include "hebs/advanced/image.h"
#include "hebs/advanced/quality.h"
#include "hebs/advanced/util.h"
#include "util/rng.h"

namespace hebs::quality {
namespace {

using hebs::image::GrayImage;
using hebs::image::UsidId;

GrayImage noisy_copy(const GrayImage& img, double sigma,
                     std::uint64_t seed) {
  GrayImage out = img;
  hebs::util::Rng rng(seed);
  add_gaussian_noise(out, sigma, rng);
  return out;
}

TEST(MsSsim, IdenticalImagesScoreOne) {
  const auto img = hebs::image::make_usid(UsidId::kLena, 64);
  EXPECT_NEAR(ms_ssim(img, img), 1.0, 1e-9);
}

TEST(MsSsim, BoundedAndOrderedByNoise) {
  const auto img = hebs::image::make_usid(UsidId::kElaine, 64);
  const double s1 = ms_ssim(img, noisy_copy(img, 0.02, 1));
  const double s2 = ms_ssim(img, noisy_copy(img, 0.15, 1));
  EXPECT_LE(s1, 1.0);
  EXPECT_GE(s2, -1.0);
  EXPECT_GT(s1, s2);
}

TEST(MsSsim, ForgivesFineNoiseMoreThanSingleScale) {
  // High-frequency noise lives only at the finest scale, which MS-SSIM
  // down-weights; a coarse structural change hits every scale.
  const auto img = hebs::image::make_usid(UsidId::kGirl, 64);
  const auto fine_noise = noisy_copy(img, 0.06, 2);
  GrayImage coarse = img;
  // Darken one quadrant: a structural change at all scales.
  hebs::image::fill_rect(coarse, 0, 0, 32, 32, 0.1);
  const double ss_fine = ssim(img, fine_noise);
  const double ms_fine = ms_ssim(img, fine_noise);
  const double ms_coarse = ms_ssim(img, coarse);
  EXPECT_GT(ms_fine, ss_fine);   // multi-scale forgives fine noise
  EXPECT_GT(ms_fine, ms_coarse); // but not structural damage
}

TEST(MsSsim, ScalesClampForSmallImages) {
  // A 16x16 image only supports two dyadic scales with an 8x8 window;
  // the call must still succeed.
  const GrayImage a(16, 16, 100);
  const GrayImage b(16, 16, 120);
  const double s = ms_ssim(a, b);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

TEST(MsSsim, SingleScaleOptionMatchesPlainSsimOrdering) {
  MsSsimOptions opts;
  opts.scales = 1;
  const auto img = hebs::image::make_usid(UsidId::kTrees, 64);
  const auto near_copy = noisy_copy(img, 0.02, 3);
  const auto far_copy = noisy_copy(img, 0.2, 3);
  EXPECT_GT(ms_ssim(img, near_copy, opts), ms_ssim(img, far_copy, opts));
}

TEST(MsSsim, ValidatesArguments) {
  const GrayImage a(16, 16, 0);
  const GrayImage b(8, 8, 0);
  EXPECT_THROW((void)ms_ssim(a, b), hebs::util::InvalidArgument);
  MsSsimOptions bad;
  bad.scales = 0;
  EXPECT_THROW((void)ms_ssim(a, a, bad), hebs::util::InvalidArgument);
  const GrayImage tiny(4, 4, 0);
  EXPECT_THROW((void)ms_ssim(tiny, tiny), hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::quality
