// Unit tests for the Histogram class.
#include <gtest/gtest.h>

#include "hebs/advanced/histogram.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/util.h"

namespace hebs::histogram {
namespace {

using hebs::image::GrayImage;

GrayImage tiny_image() {
  GrayImage img(2, 2);
  img(0, 0) = 10;
  img(1, 0) = 10;
  img(0, 1) = 20;
  img(1, 1) = 250;
  return img;
}

TEST(Histogram, FromImageCountsLevels) {
  const auto h = Histogram::from_image(tiny_image());
  EXPECT_EQ(h.count(10), 2u);
  EXPECT_EQ(h.count(20), 1u);
  EXPECT_EQ(h.count(250), 1u);
  EXPECT_EQ(h.count(0), 0u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, DefaultIsEmpty) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.min_level(), -1);
  EXPECT_EQ(h.max_level(), -1);
  EXPECT_EQ(h.dynamic_range(), 0);
  EXPECT_DOUBLE_EQ(h.pdf(5), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf(200), 0.0);
}

TEST(Histogram, AddAccumulates) {
  Histogram h;
  h.add(100, 3);
  h.add(100);
  EXPECT_EQ(h.count(100), 4u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, LevelRangeIsValidated) {
  Histogram h;
  EXPECT_THROW(h.add(-1), hebs::util::InvalidArgument);
  EXPECT_THROW(h.add(256), hebs::util::InvalidArgument);
  EXPECT_THROW((void)h.count(256), hebs::util::InvalidArgument);
  EXPECT_THROW((void)h.cdf(-1), hebs::util::InvalidArgument);
}

TEST(Histogram, FromCountsValidatesSize) {
  std::vector<std::uint64_t> empty;
  EXPECT_THROW(Histogram::from_counts(empty), hebs::util::InvalidArgument);
  std::vector<std::uint64_t> single(1, 0);
  EXPECT_THROW(Histogram::from_counts(single), hebs::util::InvalidArgument);
  std::vector<std::uint64_t> right(256, 1);
  const auto h = Histogram::from_counts(right);
  EXPECT_EQ(h.total(), 256u);
  EXPECT_EQ(h.bins(), 256);
  // Deep-pixel bin counts are a first-class size now.
  std::vector<std::uint64_t> deep(1024, 2);
  const auto h16 = Histogram::from_counts(deep);
  EXPECT_EQ(h16.bins(), 1024);
  EXPECT_EQ(h16.total(), 2048u);
}

TEST(Histogram, PdfSumsToOne) {
  const auto h = Histogram::from_image(
      hebs::image::make_usid(hebs::image::UsidId::kLena, 64));
  double acc = 0.0;
  for (int i = 0; i < Histogram::kBins; ++i) acc += h.pdf(i);
  EXPECT_NEAR(acc, 1.0, 1e-9);
}

TEST(Histogram, CdfIsMonotoneEndingAtOne) {
  const auto h = Histogram::from_image(tiny_image());
  double prev = 0.0;
  for (int i = 0; i < Histogram::kBins; ++i) {
    const double c = h.cdf(i);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(h.cdf(255), 1.0);
}

TEST(Histogram, CumulativeCountsMatchCdf) {
  const auto h = Histogram::from_image(tiny_image());
  const auto cum = h.cumulative_counts();
  EXPECT_EQ(cum[9], 0u);
  EXPECT_EQ(cum[10], 2u);
  EXPECT_EQ(cum[20], 3u);
  EXPECT_EQ(cum[255], 4u);
}

TEST(Histogram, MeanVarianceMatchDirectComputation) {
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kGirl, 64);
  const auto h = Histogram::from_image(img);
  EXPECT_NEAR(h.mean(), img.mean(), 1e-9);
  double var = 0.0;
  for (auto p : img.pixels()) {
    var += (p - img.mean()) * (p - img.mean());
  }
  var /= static_cast<double>(img.size());
  EXPECT_NEAR(h.variance(), var, 1e-6);
}

TEST(Histogram, EntropyOfConstantImageIsZero) {
  const GrayImage img(8, 8, 42);
  EXPECT_DOUBLE_EQ(Histogram::from_image(img).entropy_bits(), 0.0);
}

TEST(Histogram, EntropyOfUniformHistogramIsEightBits) {
  std::vector<std::uint64_t> counts(256, 10);
  EXPECT_NEAR(Histogram::from_counts(counts).entropy_bits(), 8.0, 1e-9);
}

TEST(Histogram, MinMaxDynamicRange) {
  const auto h = Histogram::from_image(tiny_image());
  EXPECT_EQ(h.min_level(), 10);
  EXPECT_EQ(h.max_level(), 250);
  EXPECT_EQ(h.dynamic_range(), 240);
}

TEST(Histogram, PercentileLevelFindsCdfCrossing) {
  const auto h = Histogram::from_image(tiny_image());
  EXPECT_EQ(h.percentile_level(0.0), 0);    // threshold 0 crossed at once
  EXPECT_EQ(h.percentile_level(0.5), 10);   // 2 of 4 pixels at level 10
  EXPECT_EQ(h.percentile_level(0.75), 20);
  EXPECT_EQ(h.percentile_level(1.0), 250);
}

TEST(Histogram, PercentileValidation) {
  Histogram empty;
  EXPECT_THROW((void)empty.percentile_level(0.5),
               hebs::util::InvalidArgument);
  const auto h = Histogram::from_image(tiny_image());
  EXPECT_THROW((void)h.percentile_level(1.5), hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::histogram
