// Tests for the synthetic USID album — the engineered histogram
// characters that make the substitution faithful (DESIGN.md §2).
#include <gtest/gtest.h>

#include "hebs/advanced/histogram.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/util.h"

namespace hebs::image {
namespace {

TEST(Synthetic, AlbumHasAllNineteenTable1Images) {
  const auto album = usid_album(64);
  ASSERT_EQ(album.size(), 19u);
  EXPECT_EQ(album.front().name, "Lena");
  EXPECT_EQ(album.back().name, "Elaine");
}

TEST(Synthetic, NamesMatchTable1Order) {
  const char* expected[] = {"Lena",  "Autumn", "Football", "Peppers",
                            "Greens", "Pears",  "Onion",    "Trees",
                            "West",   "Pout",   "Sail",     "Splash",
                            "Girl",   "Baboon", "TreeA",    "HouseA",
                            "GirlB",  "Testpat", "Elaine"};
  for (std::size_t i = 0; i < kAllUsidIds.size(); ++i) {
    EXPECT_EQ(usid_name(kAllUsidIds[i]), expected[i]);
  }
}

TEST(Synthetic, GenerationIsDeterministic) {
  const GrayImage a = make_usid(UsidId::kLena, 64);
  const GrayImage b = make_usid(UsidId::kLena, 64);
  EXPECT_EQ(a, b);
}

TEST(Synthetic, DifferentImagesDiffer) {
  const GrayImage a = make_usid(UsidId::kLena, 64);
  const GrayImage b = make_usid(UsidId::kPeppers, 64);
  EXPECT_NE(a, b);
}

TEST(Synthetic, RequestedSizeIsHonored) {
  for (int size : {16, 64, 128}) {
    const GrayImage img = make_usid(UsidId::kBaboon, size);
    EXPECT_EQ(img.width(), size);
    EXPECT_EQ(img.height(), size);
  }
  EXPECT_THROW(make_usid(UsidId::kLena, 8), util::InvalidArgument);
}

TEST(Synthetic, PoutHasTheNarrowHistogramOfItsNamesake) {
  // Pout is the canonical low-contrast benchmark: its dynamic range must
  // be far below full scale.
  const GrayImage pout = make_usid(UsidId::kPout, 128);
  EXPECT_LT(pout.dynamic_range(), 120);
}

TEST(Synthetic, BaboonHasBroadbandFullRangeTexture) {
  const GrayImage baboon = make_usid(UsidId::kBaboon, 128);
  EXPECT_GT(baboon.dynamic_range(), 240);
  const auto hist = histogram::Histogram::from_image(baboon);
  // Broadband texture means high entropy (near the 8-bit maximum).
  EXPECT_GT(hist.entropy_bits(), 6.5);
}

TEST(Synthetic, PoutEntropyIsWellBelowBaboon) {
  const auto pout = histogram::Histogram::from_image(
      make_usid(UsidId::kPout, 128));
  const auto baboon = histogram::Histogram::from_image(
      make_usid(UsidId::kBaboon, 128));
  EXPECT_LT(pout.entropy_bits(), baboon.entropy_bits());
}

TEST(Synthetic, SplashIsDarkDominated) {
  const auto hist = histogram::Histogram::from_image(
      make_usid(UsidId::kSplash, 128));
  // Most mass in the lower quarter of the scale.
  EXPECT_GT(hist.cdf(64), 0.6);
}

TEST(Synthetic, SailIsBrightDominated) {
  const auto hist = histogram::Histogram::from_image(
      make_usid(UsidId::kSail, 128));
  EXPECT_LT(hist.cdf(110), 0.35);
}

TEST(Synthetic, TestpatCoversFullRange) {
  const GrayImage tp = make_usid(UsidId::kTestpat, 128);
  const auto mm = tp.min_max();
  EXPECT_EQ(mm.min, 0);
  EXPECT_EQ(mm.max, 255);
}

TEST(Synthetic, AllImagesAreNonDegenerate) {
  for (const auto& named : usid_album(64)) {
    EXPECT_GT(named.image.dynamic_range(), 20)
        << named.name << " is nearly constant";
    const auto hist = histogram::Histogram::from_image(named.image);
    EXPECT_GT(hist.entropy_bits(), 2.0) << named.name;
  }
}

TEST(Synthetic, Figure8SubsetIsSixDiverseImages) {
  const auto subset = usid_figure8_subset(64);
  ASSERT_EQ(subset.size(), 6u);
  // Histogram-diverse: contains both a dark-dominated and a bright-
  // dominated pick.
  bool has_splash = false;
  bool has_sail = false;
  for (const auto& named : subset) {
    has_splash |= named.name == "Splash";
    has_sail |= named.name == "Sail";
  }
  EXPECT_TRUE(has_splash);
  EXPECT_TRUE(has_sail);
}

TEST(Synthetic, VideoClipHasRequestedShape) {
  const auto clip = make_video_clip(12, 32);
  ASSERT_EQ(clip.size(), 12u);
  for (const auto& frame : clip) {
    EXPECT_EQ(frame.width(), 32);
    EXPECT_EQ(frame.height(), 32);
  }
}

TEST(Synthetic, VideoClipHasASceneCut) {
  // The clip darkens abruptly two-thirds in; mean luminance must drop.
  const auto clip = make_video_clip(15, 48);
  const double early = clip[4].mean();
  const double late = clip[12].mean();
  EXPECT_GT(early - late, 30.0);
}

TEST(Synthetic, VideoClipIsDeterministic) {
  const auto a = make_video_clip(5, 32, 99);
  const auto b = make_video_clip(5, 32, 99);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Synthetic, VideoClipValidatesArguments) {
  EXPECT_THROW(make_video_clip(0, 32), util::InvalidArgument);
  EXPECT_THROW(make_video_clip(5, 4), util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::image
