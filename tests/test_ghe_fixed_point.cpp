// Tests for the integer-only GHE path and distortion-curve persistence —
// the deployment artifacts of the hardware story.
#include <gtest/gtest.h>

#include <cstdio>

#include "hebs/advanced/core.h"
#include "image/synthetic.h"
#include "hebs/advanced/util.h"

namespace hebs::core {
namespace {

using hebs::histogram::Histogram;
using hebs::image::UsidId;

/// Property sweep: the fixed-point LUT matches the floating-point LUT
/// within one gray level on every entry, for every album image and a
/// spread of targets.
class FixedPointAgreement
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FixedPointAgreement, WithinOneLevelOfFloatPath) {
  const auto [image_index, range] = GetParam();
  const auto img = hebs::image::make_usid(
      hebs::image::kAllUsidIds[static_cast<std::size_t>(image_index)], 64);
  const auto hist = Histogram::from_image(img);
  const GheTarget target{0, range};
  const auto float_lut = ghe_lut(hist, target);
  const auto fixed_lut = ghe_lut_fixed_point(hist, target);
  for (int level = 0; level < 256; ++level) {
    EXPECT_NEAR(static_cast<int>(float_lut[level]),
                static_cast<int>(fixed_lut[level]), 1)
        << "level " << level << " range " << range;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ImagesAndRanges, FixedPointAgreement,
    ::testing::Combine(::testing::Values(0, 5, 9, 13, 17),
                       ::testing::Values(60, 120, 200, 255)));

TEST(FixedPoint, IsMonotoneAndRangeTight) {
  hebs::util::Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Histogram h;
    for (int i = 0; i < 40; ++i) {
      h.add(rng.uniform_int(0, 255),
            static_cast<std::uint64_t>(rng.uniform_int(1, 1000)));
    }
    const GheTarget target{0, 140};
    const auto lut = ghe_lut_fixed_point(h, target);
    EXPECT_TRUE(lut.is_monotonic());
    EXPECT_LE(lut.max_output(), 140);
  }
}

TEST(FixedPoint, HandlesDegenerateHistogram) {
  Histogram h;
  h.add(99, 12345);
  const auto lut = ghe_lut_fixed_point(h, GheTarget{0, 100});
  EXPECT_EQ(lut[99], 100);
  EXPECT_TRUE(lut.is_monotonic());
}

TEST(FixedPoint, ValidatesArguments) {
  Histogram empty;
  EXPECT_THROW((void)ghe_lut_fixed_point(empty, GheTarget{0, 100}),
               hebs::util::InvalidArgument);
}

TEST(CurvePersistence, SaveLoadRoundTripsPredictions) {
  const std::vector<hebs::image::NamedImage> album = {
      {"Lena", hebs::image::make_usid(UsidId::kLena, 48)},
      {"Pout", hebs::image::make_usid(UsidId::kPout, 48)},
      {"Baboon", hebs::image::make_usid(UsidId::kBaboon, 48)},
      {"Sail", hebs::image::make_usid(UsidId::kSail, 48)},
  };
  const auto ranges = DistortionCurve::default_ranges();
  const auto curve = DistortionCurve::characterize(
      album, ranges, {}, hebs::power::LcdSubsystemPower::lp064v1());

  const std::string path = ::testing::TempDir() + "hebs_curve.csv";
  curve.save(path);
  const DistortionCurve loaded = DistortionCurve::load(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.range_lo(), curve.range_lo());
  EXPECT_EQ(loaded.range_hi(), curve.range_hi());
  for (int range = curve.range_lo(); range <= curve.range_hi();
       range += 17) {
    EXPECT_NEAR(loaded.average_distortion(range),
                curve.average_distortion(range), 1e-9);
    EXPECT_NEAR(loaded.worst_distortion(range),
                curve.worst_distortion(range), 1e-9);
  }
  for (double budget : {5.0, 10.0, 20.0}) {
    EXPECT_EQ(loaded.min_range_for(budget), curve.min_range_for(budget));
  }
}

TEST(CurvePersistence, LoadRejectsMalformedFiles) {
  const std::string path = ::testing::TempDir() + "bad_curve.csv";
  auto write = [&path](const char* text) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs(text, f);
    std::fclose(f);
  };
  write("curve,range_lo,range_hi,c0,c1,c2\n");  // header only
  EXPECT_THROW((void)DistortionCurve::load(path), hebs::util::IoError);
  write("curve,range_lo,range_hi,c0,c1,c2\n"
        "average,40,250,1.0,nope,3.0\n"
        "worst_case,40,250,1.0,2.0,3.0\n");
  EXPECT_THROW((void)DistortionCurve::load(path), hebs::util::IoError);
  write("curve,range_lo,range_hi,c0,c1,c2\n"
        "mystery,40,250,1.0,2.0,3.0\n");
  EXPECT_THROW((void)DistortionCurve::load(path), hebs::util::IoError);
  std::remove(path.c_str());
  EXPECT_THROW((void)DistortionCurve::load("/no/such/file.csv"),
               hebs::util::IoError);
}

}  // namespace
}  // namespace hebs::core
