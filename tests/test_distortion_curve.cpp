// Tests for the distortion characteristic curve (§5.1c, Fig. 7).
#include <gtest/gtest.h>

#include "hebs/advanced/core.h"
#include "image/synthetic.h"
#include "hebs/advanced/util.h"

namespace hebs::core {
namespace {

using hebs::image::NamedImage;
using hebs::image::UsidId;

const hebs::power::LcdSubsystemPower& model() {
  static const auto m = hebs::power::LcdSubsystemPower::lp064v1();
  return m;
}

std::vector<NamedImage> small_album() {
  return {
      {"Lena", hebs::image::make_usid(UsidId::kLena, 64)},
      {"Pout", hebs::image::make_usid(UsidId::kPout, 64)},
      {"Baboon", hebs::image::make_usid(UsidId::kBaboon, 64)},
      {"Sail", hebs::image::make_usid(UsidId::kSail, 64)},
      {"Splash", hebs::image::make_usid(UsidId::kSplash, 64)},
  };
}

const DistortionCurve& characterized() {
  static const DistortionCurve curve = [] {
    const auto ranges = DistortionCurve::default_ranges();
    return DistortionCurve::characterize(small_album(), ranges, {}, model());
  }();
  return curve;
}

TEST(DistortionCurve, DefaultRangesAreTenValues) {
  // §5.1c: "the dynamic range of the transformed image is set to ten
  // different values".
  EXPECT_EQ(DistortionCurve::default_ranges().size(), 10u);
}

TEST(DistortionCurve, PredictsLessDistortionAtWiderRanges) {
  const auto& curve = characterized();
  EXPECT_GT(curve.average_distortion(60), curve.average_distortion(200));
  EXPECT_GT(curve.worst_distortion(60), curve.worst_distortion(200));
}

TEST(DistortionCurve, WorstCaseDominatesAverageMidDomain) {
  const auto& curve = characterized();
  for (int range : {80, 120, 160, 200}) {
    EXPECT_GE(curve.worst_distortion(range),
              curve.average_distortion(range) - 0.5)
        << "range " << range;
  }
}

TEST(DistortionCurve, PredictionsAreNonNegativeEverywhere) {
  const auto& curve = characterized();
  for (int range = curve.range_lo(); range <= curve.range_hi(); range += 10) {
    EXPECT_GE(curve.average_distortion(range), 0.0);
    EXPECT_GE(curve.worst_distortion(range), 0.0);
  }
}

TEST(DistortionCurve, MinRangeForIsMonotoneInBudget) {
  const auto& curve = characterized();
  int prev = 256;
  for (double budget : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    const int r = curve.min_range_for(budget);
    EXPECT_LE(r, prev) << "budget " << budget;
    prev = r;
  }
}

TEST(DistortionCurve, ZeroBudgetDemandsAtLeastAsMuchRangeAsAnyOther) {
  // Distortion reaches zero once the range covers the native width, so a
  // zero budget may be satisfiable before range_hi — but never with less
  // range than a positive budget needs.
  const auto& curve = characterized();
  for (double budget : {2.0, 5.0, 10.0}) {
    EXPECT_GE(curve.min_range_for(0.0), curve.min_range_for(budget));
  }
  EXPECT_LE(curve.worst_distortion(curve.min_range_for(0.0)), 0.5);
}

TEST(DistortionCurve, HugeBudgetAllowsTheNarrowestRange) {
  const auto& curve = characterized();
  EXPECT_EQ(curve.min_range_for(100.0), curve.range_lo());
}

TEST(DistortionCurve, LookupSatisfiesItsOwnPrediction) {
  const auto& curve = characterized();
  for (double budget : {5.0, 10.0, 20.0}) {
    const int r = curve.min_range_for(budget);
    EXPECT_LE(curve.worst_distortion(r), budget + 1e-9) << budget;
  }
}

TEST(DistortionCurve, CharacterizeExportsTheScatter) {
  std::vector<CharacterizationPoint> points;
  const auto ranges = DistortionCurve::default_ranges();
  const auto album = small_album();
  (void)DistortionCurve::characterize(album, ranges, {}, model(), &points);
  EXPECT_EQ(points.size(), album.size() * ranges.size());
  // Every (image, range) pair appears once.
  for (const auto& p : points) {
    EXPECT_FALSE(p.image_name.empty());
    EXPECT_GE(p.distortion_percent, 0.0);
  }
}

TEST(DistortionCurve, ValidatesArguments) {
  EXPECT_THROW(DistortionCurve(fit::Poly{{1.0}}, fit::Poly{{1.0}}, 100, 50),
               hebs::util::InvalidArgument);
  const std::vector<NamedImage> empty_album;
  const auto ranges = DistortionCurve::default_ranges();
  EXPECT_THROW(
      DistortionCurve::characterize(empty_album, ranges, {}, model()),
      hebs::util::InvalidArgument);
  const std::vector<int> too_few = {100, 200};
  EXPECT_THROW(
      DistortionCurve::characterize(small_album(), too_few, {}, model()),
      hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::core
