// Tests for the intra-frame row-parallelism seam (util/parallel.h) and
// the ThreadPool fork-join it rides on (pipeline/executor.h): executor
// installation scoping, chunk coverage, concurrent external callers,
// the effective-concurrency cap, exception propagation and the
// deterministic ordered reduction the kernels rely on (DESIGN.md §11:
// results must be bit-identical for every executor, chunking and
// thread count).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "hebs/advanced/pipeline.h"
#include "hebs/advanced/util.h"

namespace {

using hebs::pipeline::ThreadPool;
using hebs::util::ParallelScope;
using hebs::util::parallel_rows;
using hebs::util::RowBody;
using hebs::util::row_executor;
using hebs::util::RowExecutor;

// Minimal pool-backed executor mirroring the engine's PoolRowExecutor
// chunking: splits [0, n) into one contiguous chunk per worker.
class ChunkedExecutor final : public RowExecutor {
 public:
  explicit ChunkedExecutor(ThreadPool& pool, int chunks)
      : pool_(pool), chunks_(chunks) {}

  void run(int n, RowBody body) override {
    const int step = (n + chunks_ - 1) / chunks_;
    pool_.parallel_for(static_cast<std::size_t>(chunks_),
                       [&](std::size_t chunk, int) {
                         const int begin = static_cast<int>(chunk) * step;
                         body(begin, std::min(n, begin + step));
                       });
  }

 private:
  ThreadPool& pool_;
  const int chunks_;
};

TEST(ParallelRows, SerialFallbackCoversRangeInOneCall) {
  ASSERT_EQ(row_executor(), nullptr);
  int calls = 0;
  int seen_begin = -1;
  int seen_end = -1;
  parallel_rows(17, [&](int begin, int end) {
    ++calls;
    seen_begin = begin;
    seen_end = end;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_begin, 0);
  EXPECT_EQ(seen_end, 17);
}

TEST(ParallelRows, EmptyRangeNeverInvokesBody) {
  bool called = false;
  parallel_rows(0, [&](int, int) { called = true; });
  parallel_rows(-3, [&](int, int) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelRows, ScopesNestAndRestore) {
  ThreadPool pool(2);
  ChunkedExecutor outer(pool, 2);
  ChunkedExecutor inner(pool, 2);
  ASSERT_EQ(row_executor(), nullptr);
  {
    ParallelScope a(&outer);
    EXPECT_EQ(row_executor(), &outer);
    {
      ParallelScope b(&inner);
      EXPECT_EQ(row_executor(), &inner);
      ParallelScope c(nullptr);  // explicit uninstall nests too
      EXPECT_EQ(row_executor(), nullptr);
    }
    EXPECT_EQ(row_executor(), &outer);
  }
  EXPECT_EQ(row_executor(), nullptr);
}

TEST(ParallelRows, ChunksAreDisjointAndCoverRange) {
  ThreadPool pool(4);
  ChunkedExecutor exec(pool, 4);
  ParallelScope scope(&exec);
  constexpr int kRows = 103;
  std::vector<std::atomic<int>> touched(kRows);
  parallel_rows(kRows, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      touched[static_cast<std::size_t>(i)].fetch_add(1);
    }
  });
  for (int i = 0; i < kRows; ++i) {
    EXPECT_EQ(touched[static_cast<std::size_t>(i)].load(), 1) << "row " << i;
  }
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  pool.parallel_for(kN, [&](std::size_t i, int) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, EffectiveConcurrencyIsCappedAtHardware) {
  const int hw = std::max(
      1, static_cast<int>(std::thread::hardware_concurrency()));
  ThreadPool oversized(hw + 13);
  EXPECT_EQ(oversized.thread_count(), hw + 13);
  EXPECT_EQ(oversized.effective_concurrency(), hw);
  ThreadPool small(1);
  EXPECT_EQ(small.effective_concurrency(), 1);
}

TEST(ThreadPool, WorkersBeyondTheCapNeverClaimIndices) {
  const int hw = std::max(
      1, static_cast<int>(std::thread::hardware_concurrency()));
  ThreadPool pool(hw + 5);
  std::mutex mu;
  std::set<int> claimants;
  pool.parallel_for(512, [&](std::size_t, int worker) {
    std::lock_guard<std::mutex> lock(mu);
    claimants.insert(worker);
  });
  ASSERT_FALSE(claimants.empty());
  // Only workers below the cap may claim; ids at or above
  // effective_concurrency() sit the call out.
  EXPECT_LT(*claimants.rbegin(), pool.effective_concurrency());
}

TEST(ThreadPool, ConcurrentCallersSerializeAndBothComplete) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 400;
  constexpr int kRounds = 25;
  std::vector<std::atomic<int>> a(kN);
  std::vector<std::atomic<int>> b(kN);
  std::thread caller_a([&] {
    for (int r = 0; r < kRounds; ++r) {
      pool.parallel_for(kN, [&](std::size_t i, int) { a[i].fetch_add(1); });
    }
  });
  std::thread caller_b([&] {
    for (int r = 0; r < kRounds; ++r) {
      pool.parallel_for(kN, [&](std::size_t i, int) { b[i].fetch_add(1); });
    }
  });
  caller_a.join();
  caller_b.join();
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(a[i].load(), kRounds) << "caller A index " << i;
    ASSERT_EQ(b[i].load(), kRounds) << "caller B index " << i;
  }
}

TEST(ThreadPool, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i, int) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // A failed fan-out must leave the pool ready for the next one.
  std::atomic<int> ran{0};
  pool.parallel_for(64, [&](std::size_t, int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ExceptionSkipsRemainingUnclaimedIndices) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  constexpr std::size_t kN = 100000;
  EXPECT_THROW(pool.parallel_for(kN,
                                 [&](std::size_t, int) {
                                   executed.fetch_add(1);
                                   throw std::runtime_error("first");
                                 }),
               std::runtime_error);
  // Every claimant can have at most one in-flight index when the
  // failure latch trips, so execution stops far short of the batch.
  EXPECT_LE(executed.load(), pool.effective_concurrency());
}

TEST(ThreadPool, ReentrantUseIsRejectedNotDeadlocked) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(4,
                                 [&](std::size_t, int) {
                                   pool.parallel_for(
                                       2, [](std::size_t, int) {});
                                 }),
               hebs::util::InvalidArgument);
  // The single-thread inline path enforces the same contract.
  ThreadPool inline_pool(1);
  EXPECT_THROW(inline_pool.parallel_for(
                   4,
                   [&](std::size_t, int) {
                     inline_pool.parallel_for(2, [](std::size_t, int) {});
                   }),
               hebs::util::InvalidArgument);
  // A different pool inside the body is fine (the engine nests the
  // row executor's pool inside frame-level fan-out this way).
  ThreadPool other(2);
  std::atomic<int> ran{0};
  pool.parallel_for(4, [&](std::size_t, int) {
    other.parallel_for(8, [&](std::size_t, int) { ran.fetch_add(1); });
  });
  EXPECT_EQ(ran.load(), 32);
}

// The determinism contract: a float reduction computed by writing
// per-chunk partials at their chunk index and folding them in index
// order must be bit-identical for every worker count, because float
// addition is not associative and completion order must not matter.
TEST(ThreadPool, OrderedReductionIsBitIdenticalAcrossWorkerCounts) {
  constexpr int kRows = 1537;
  constexpr int kChunks = 8;
  constexpr int kStep = (kRows + kChunks - 1) / kChunks;
  // Row values chosen so accumulation order visibly changes low bits:
  // wildly varying magnitudes.
  std::vector<float> rows(kRows);
  for (int i = 0; i < kRows; ++i) {
    rows[static_cast<std::size_t>(i)] =
        (i % 7 == 0 ? 1.0e6f : 1.0f) / (1.0f + static_cast<float>(i % 97));
  }

  const auto reduce_with = [&](int threads) {
    ThreadPool pool(threads);
    std::vector<float> partial(kChunks, 0.0f);
    pool.parallel_for(kChunks, [&](std::size_t chunk, int) {
      const int begin = static_cast<int>(chunk) * kStep;
      const int end = std::min(kRows, begin + kStep);
      float acc = 0.0f;  // serial left-to-right within the chunk
      for (int i = begin; i < end; ++i) {
        acc += rows[static_cast<std::size_t>(i)];
      }
      partial[chunk] = acc;  // written by index, never by completion
    });
    float total = 0.0f;  // folded in chunk order on the caller
    for (float p : partial) total += p;
    return total;
  };

  const float serial = reduce_with(1);
  const float two = reduce_with(2);
  const float eight = reduce_with(8);
  // Bit-identical, not approximately equal.
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
}

// -------------------------------------------------------- unwind safety
// DESIGN.md §14: a throwing body must neither wedge the pool nor poison
// the next fan-out — the first exception is rethrown to the caller, the
// remaining indices are abandoned, and the pool is immediately reusable.

TEST(ThreadPool, BodyExceptionRethrowsToCaller) {
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(16,
                          [&](std::size_t i, int) {
                            if (i == 5) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
  }
}

TEST(ThreadPool, PoolSurvivesAndReusesAfterBodyException) {
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(pool.parallel_for(
                     32, [&](std::size_t, int) { throw std::logic_error("x"); }),
                 std::logic_error);
    // The very next fan-out on the same pool must run every index.
    std::atomic<int> runs{0};
    pool.parallel_for(32, [&](std::size_t, int) {
      runs.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(runs.load(), 32);
  }
}

TEST(ThreadPool, ExceptionStopsFurtherClaims) {
  // After the first failure workers stop claiming fresh indices: the
  // count of executed bodies never reaches n (with slack for indices
  // already claimed when the failure landed).
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.parallel_for(10'000,
                                 [&](std::size_t i, int) {
                                   executed.fetch_add(
                                       1, std::memory_order_relaxed);
                                   if (i == 0) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
  EXPECT_LT(executed.load(), 10'000);
}

TEST(ThreadPool, EveryWorkerThrowingStillUnwindsOnce) {
  ThreadPool pool(8);
  EXPECT_THROW(pool.parallel_for(
                   64, [&](std::size_t, int) { throw std::runtime_error("x"); }),
               std::runtime_error);
  std::atomic<int> runs{0};
  pool.parallel_for(8, [&](std::size_t, int) {
    runs.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(runs.load(), 8);
}

}  // namespace
