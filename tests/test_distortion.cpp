// Tests for the unified distortion front end.
#include <gtest/gtest.h>

#include "hebs/advanced/image.h"
#include "hebs/advanced/quality.h"
#include "util/rng.h"

namespace hebs::quality {
namespace {

using hebs::image::GrayImage;

GrayImage noisy_copy(const GrayImage& img, double sigma,
                     std::uint64_t seed) {
  GrayImage out = img;
  hebs::util::Rng rng(seed);
  add_gaussian_noise(out, sigma, rng);
  return out;
}

/// Sweep every metric: shared contract checks.
class MetricSweep : public ::testing::TestWithParam<Metric> {};

TEST_P(MetricSweep, IdenticalImagesHaveZeroDistortion) {
  DistortionOptions opts;
  opts.metric = GetParam();
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kLena, 64);
  EXPECT_NEAR(distortion_percent(img, img, opts), 0.0, 1e-6);
}

TEST_P(MetricSweep, DistortionGrowsWithNoise) {
  DistortionOptions opts;
  opts.metric = GetParam();
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kTrees, 64);
  const double d_small =
      distortion_percent(img, noisy_copy(img, 0.02, 1), opts);
  const double d_large =
      distortion_percent(img, noisy_copy(img, 0.25, 1), opts);
  EXPECT_LT(d_small, d_large);
}

TEST_P(MetricSweep, DistortionIsWithinPercentBounds) {
  DistortionOptions opts;
  opts.metric = GetParam();
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kSail, 64);
  const double d = distortion_percent(img, noisy_copy(img, 0.3, 2), opts);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 100.0);
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricSweep,
                         ::testing::Values(Metric::kUiqi, Metric::kUiqiHvs,
                                           Metric::kSsim, Metric::kSsimHvs,
                                           Metric::kRmse));

TEST(Distortion, MetricNamesAreDistinct) {
  EXPECT_STREQ(metric_name(Metric::kUiqiHvs), "UIQI+HVS");
  EXPECT_STREQ(metric_name(Metric::kUiqi), "UIQI");
  EXPECT_STREQ(metric_name(Metric::kSsim), "SSIM");
  EXPECT_STREQ(metric_name(Metric::kSsimHvs), "SSIM+HVS");
  EXPECT_STREQ(metric_name(Metric::kRmse), "RMSE");
}

TEST(Distortion, RmseMetricMatchesHandComputation) {
  GrayImage a(8, 8, 0);
  GrayImage b(8, 8, 51);  // normalized error 0.2 everywhere
  DistortionOptions opts;
  opts.metric = Metric::kRmse;
  EXPECT_NEAR(distortion_percent(a, b, opts), 20.0, 0.01);
}

TEST(Distortion, HvsVariantWeighsDarkErrorsMore) {
  // Add the same absolute luminance error to a dark and a bright image:
  // the HVS-aware metric must penalize the dark case more.
  GrayImage dark(64, 64, 30);
  GrayImage bright(64, 64, 220);
  GrayImage dark_shift = dark;
  GrayImage bright_shift = bright;
  for (auto& p : dark_shift.pixels()) p += 15;
  for (auto& p : bright_shift.pixels()) p += 15;

  DistortionOptions hvs;
  hvs.metric = Metric::kUiqiHvs;
  const double d_dark = distortion_percent(dark, dark_shift, hvs);
  const double d_bright = distortion_percent(bright, bright_shift, hvs);
  EXPECT_GT(d_dark, d_bright);
}

TEST(Distortion, GrayAndFloatPathsAgree) {
  const auto a = hebs::image::make_usid(hebs::image::UsidId::kOnion, 64);
  const auto b = noisy_copy(a, 0.1, 3);
  DistortionOptions opts;
  opts.metric = Metric::kUiqi;
  const double d8 = distortion_percent(a, b, opts);
  const double df =
      distortion_percent(hebs::image::FloatImage::from_gray(a),
                         hebs::image::FloatImage::from_gray(b), opts);
  EXPECT_NEAR(d8, df, 1e-9);
}

TEST(Distortion, PaperDefaultIsUiqiOverHvs) {
  const DistortionOptions defaults;
  EXPECT_EQ(defaults.metric, Metric::kUiqiHvs);
}

}  // namespace
}  // namespace hebs::quality
