// Tests for the temporal-coherence fast path and its bit-identity
// guarantees: stream outputs must match the cold per-frame search
// exactly on every clip shape (static, slow pan, scene cuts, duplicate
// frames), whatever the seed quality, thread count, or pool state.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "hebs/advanced/core.h"
#include "histogram/histogram.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/pipeline.h"
#include "power/lcd_power.h"
#include "util/pool.h"
#include "hebs/advanced/util.h"

namespace hebs::pipeline {
namespace {

using hebs::image::GrayImage;

const hebs::power::LcdSubsystemPower& model() {
  static const auto m = hebs::power::LcdSubsystemPower::lp064v1();
  return m;
}

bool same_result(const core::HebsResult& a, const core::HebsResult& b) {
  return a.point.beta == b.point.beta &&
         a.point.luminance_transform.points() ==
             b.point.luminance_transform.points() &&
         a.phi.points() == b.phi.points() &&
         a.lambda.points() == b.lambda.points() &&
         a.plc_mse == b.plc_mse && a.target.g_min == b.target.g_min &&
         a.target.g_max == b.target.g_max &&
         a.evaluation.distortion_percent ==
             b.evaluation.distortion_percent &&
         a.evaluation.saving_percent == b.evaluation.saving_percent &&
         a.evaluation.transformed == b.evaluation.transformed;
}

bool same_decision(const core::FrameDecision& a,
                   const core::FrameDecision& b) {
  return a.raw_beta == b.raw_beta && a.beta == b.beta &&
         a.scene_cut == b.scene_cut && a.point.beta == b.point.beta &&
         a.point.luminance_transform.points() ==
             b.point.luminance_transform.points() &&
         a.evaluation.distortion_percent ==
             b.evaluation.distortion_percent &&
         a.evaluation.saving_percent == b.evaluation.saving_percent &&
         a.evaluation.transformed == b.evaluation.transformed;
}

// --------------------------------------------------------------- clips

std::vector<GrayImage> static_clip(int frames, int size) {
  const GrayImage base = hebs::image::make_usid(hebs::image::UsidId::kPout,
                                                size);
  return std::vector<GrayImage>(static_cast<std::size_t>(frames), base);
}

std::vector<GrayImage> scene_cut_clip(int size) {
  using hebs::image::UsidId;
  std::vector<GrayImage> clip;
  for (UsidId id : {UsidId::kPout, UsidId::kBaboon, UsidId::kSplash}) {
    const GrayImage scene = hebs::image::make_usid(id, size);
    for (int i = 0; i < 4; ++i) clip.push_back(scene);
  }
  return clip;
}

std::vector<GrayImage> duplicate_frame_clip(int size) {
  // A B B A A B: duplicates both within and across runs.
  const GrayImage a = hebs::image::make_usid(hebs::image::UsidId::kLena,
                                             size);
  const GrayImage b = hebs::image::make_usid(hebs::image::UsidId::kPears,
                                             size);
  return {a, b, b, a, a, b};
}

/// Serial reference: a fresh controller processing frame by frame
/// through the cold path (fresh context per frame).
std::vector<core::FrameDecision> serial_reference(
    const std::vector<GrayImage>& clip, core::VideoOptions opts) {
  opts.temporal_reuse = false;
  opts.use_buffer_pool = false;
  core::VideoBacklightController ctl(opts, model());
  std::vector<core::FrameDecision> out;
  out.reserve(clip.size());
  for (const auto& frame : clip) out.push_back(ctl.process(frame));
  return out;
}

void expect_stream_matches_serial(const std::vector<GrayImage>& clip) {
  core::VideoOptions opts;
  opts.d_max_percent = 10.0;
  const auto reference = serial_reference(clip, opts);
  for (const bool temporal : {false, true}) {
    for (const bool pooled : {false, true}) {
      for (const int threads : {1, 4}) {
        core::VideoOptions run = opts;
        run.temporal_reuse = temporal;
        run.use_buffer_pool = pooled;
        run.num_threads = threads;
        core::VideoBacklightController ctl(run, model());
        const auto decisions = ctl.process_clip(clip);
        ASSERT_EQ(decisions.size(), reference.size());
        for (std::size_t i = 0; i < decisions.size(); ++i) {
          EXPECT_TRUE(same_decision(decisions[i], reference[i]))
              << "frame " << i << " temporal=" << temporal
              << " pooled=" << pooled << " threads=" << threads;
        }
      }
    }
  }
}

TEST(Temporal, StreamMatchesSerialOnStaticClip) {
  expect_stream_matches_serial(static_clip(8, 48));
}

TEST(Temporal, StreamMatchesSerialOnSlowPan) {
  expect_stream_matches_serial(hebs::image::make_video_clip(10, 48));
}

TEST(Temporal, StreamMatchesSerialOnSceneCuts) {
  expect_stream_matches_serial(scene_cut_clip(48));
}

TEST(Temporal, StreamMatchesSerialOnDuplicateFrames) {
  expect_stream_matches_serial(duplicate_frame_clip(48));
}

// ------------------------------------------- warm-start bit-identity

/// The load-bearing property: run_exact_traced returns the bits of
/// run_exact for ANY seed — a stale seed, a seed from unrelated
/// content, or none — wherever measured distortion is monotone over
/// the search interval (the DESIGN.md §9 contract; budgets inside a
/// sub-0.1% non-monotone wiggle may legitimately select a different
/// verified bracket).  Fuzzed over diverse images and round budgets,
/// which sit well clear of the wiggles.
TEST(Temporal, WarmSearchMatchesColdForArbitrarySeeds) {
  const auto album = hebs::image::usid_album(48);
  const double budgets[] = {2.0, 10.0, 35.0};
  std::vector<SearchTrace> traces;
  // First pass: collect every (image, budget) trace.
  for (const auto& [name, img] : album) {
    for (const double d : budgets) {
      FrameContext ctx(img, {}, model());
      SearchTrace trace;
      (void)run_exact_traced(ctx, d, nullptr, &trace);
      traces.push_back(trace);
    }
  }
  // Second pass: every image/budget warmed with a rotating (usually
  // wrong) seed must still reproduce the cold bits.
  hebs::util::Rng rng(7);
  std::size_t warm_hits = 0;
  std::size_t runs = 0;
  for (std::size_t i = 0; i < album.size(); ++i) {
    for (const double d : budgets) {
      const auto& img = album[i].image;
      FrameContext cold_ctx(img, {}, model());
      const core::HebsResult cold = run_exact(cold_ctx, d);
      const auto& seed =
          traces[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<int>(traces.size()) - 1))];
      FrameContext warm_ctx(img, {}, model());
      SearchTrace out;
      const core::HebsResult warm =
          run_exact_traced(warm_ctx, d, &seed, &out);
      EXPECT_TRUE(same_result(cold, warm))
          << album[i].name << " at D_max " << d;
      warm_hits += out.warmed ? 1 : 0;
      ++runs;
    }
  }
  // Self-seeding sanity: an exact seed must verify (fast path taken).
  for (const double d : budgets) {
    const auto& img = album[0].image;
    FrameContext ctx(img, {}, model());
    SearchTrace first;
    const auto cold = run_exact_traced(ctx, d, nullptr, &first);
    FrameContext ctx2(img, {}, model());
    SearchTrace second;
    const auto warm = run_exact_traced(ctx2, d, &first, &second);
    EXPECT_TRUE(same_result(cold, warm));
    EXPECT_TRUE(second.warmed);
  }
  (void)warm_hits;
  (void)runs;
}

// ----------------------------------------------- TemporalReuse engine

TEST(Temporal, ReuseMatchesColdOnPerturbedFrames) {
  // Frame chain A, A, A+ε, B (duplicate, small delta, scene change):
  // every TemporalReuse result must equal a fresh cold search.
  const GrayImage a = hebs::image::make_usid(hebs::image::UsidId::kGirl, 48);
  GrayImage a_eps = a;
  a_eps.set(3, 5, static_cast<std::uint8_t>(a.at(3, 5) ^ 0x10));
  a_eps.set(40, 41, static_cast<std::uint8_t>(a.at(40, 41) + 1));
  const GrayImage b = hebs::image::make_usid(hebs::image::UsidId::kBaboon,
                                             48);
  const std::vector<GrayImage> chain = {a, a, a_eps, b};

  hebs::util::BufferPool pool;
  hebs::util::PoolScope scope(&pool);
  FrameContext ctx({}, model());
  TemporalReuse reuse;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const core::HebsResult warm = reuse.process(ctx, chain[i], 10.0);
    FrameContext cold_ctx(chain[i], {}, model());
    const core::HebsResult cold = run_exact(cold_ctx, 10.0);
    EXPECT_TRUE(same_result(warm, cold)) << "frame " << i;
  }
  EXPECT_EQ(reuse.stats().unchanged, 1u);
  EXPECT_GE(reuse.stats().incremental, 1u);
}

TEST(Temporal, RebindAfterPoolRecycleLeaksNoStaleCaches) {
  // One context cycling A → B → A through a recycling pool must produce
  // the same bits as fresh contexts: recycled buffers carry no stale
  // cache state through FrameContext::rebind.
  const GrayImage a = hebs::image::make_usid(hebs::image::UsidId::kSail, 48);
  const GrayImage b = hebs::image::make_usid(hebs::image::UsidId::kOnion,
                                             48);
  hebs::util::BufferPool pool;
  hebs::util::PoolScope scope(&pool);
  FrameContext recycled({}, model());
  const GrayImage* sequence[] = {&a, &b, &a, &b, &a};
  for (const GrayImage* frame : sequence) {
    recycled.rebind(*frame);
    const core::HebsResult warm = run_exact(recycled, 10.0);
    FrameContext fresh(*frame, {}, model());
    const core::HebsResult cold = run_exact(fresh, 10.0);
    EXPECT_TRUE(same_result(warm, cold));
  }
  // The pool did recycle (second A onward draws from the free lists).
  EXPECT_GT(pool.stats().hits, 0u);
}

// ------------------------------------------------ incremental histogram

TEST(Temporal, HistogramDeltaRefreshIsExact) {
  hebs::util::Rng rng(2005);
  const GrayImage prev = hebs::image::make_usid(hebs::image::UsidId::kTrees,
                                                64);
  GrayImage cur = prev;
  for (int i = 0; i < 200; ++i) {
    const int x = rng.uniform_int(0, 63);
    const int y = rng.uniform_int(0, 63);
    cur.set(x, y, static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
  }
  auto hist = hebs::histogram::Histogram::from_image(prev);
  std::size_t changed = 0;
  ASSERT_TRUE(hist.refresh_from_delta(prev, cur, cur.size(), &changed));
  EXPECT_LE(changed, 200u);
  const auto exact = hebs::histogram::Histogram::from_image(cur);
  EXPECT_EQ(hist, exact);
}

TEST(Temporal, HistogramDeltaRefreshDetectsIdenticalFrames) {
  const GrayImage img = hebs::image::make_usid(hebs::image::UsidId::kWest,
                                               48);
  auto hist = hebs::histogram::Histogram::from_image(img);
  const auto before = hist;
  std::size_t changed = 123;
  ASSERT_TRUE(hist.refresh_from_delta(img, img, 0, &changed));
  EXPECT_EQ(changed, 0u);
  EXPECT_EQ(hist, before);
}

TEST(Temporal, HistogramDeltaRefreshBailsOnLargeDeltas) {
  const GrayImage a(33, 17, 10);  // odd sizes exercise the word tail
  const GrayImage b(33, 17, 200);
  auto hist = hebs::histogram::Histogram::from_image(a);
  const auto before = hist;
  EXPECT_FALSE(hist.refresh_from_delta(a, b, a.size() / 4));
  EXPECT_EQ(hist, before);  // untouched on bail
  // Unlimited threshold succeeds even on a full-frame change.
  ASSERT_TRUE(hist.refresh_from_delta(a, b, a.size()));
  EXPECT_EQ(hist, hebs::histogram::Histogram::from_image(b));
}

}  // namespace
}  // namespace hebs::pipeline
