// Tests for histogram operations, distances and the Eq. 4 objective.
#include <gtest/gtest.h>

#include "hebs/advanced/core.h"
#include "hebs/advanced/histogram.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/util.h"

namespace hebs::histogram {
namespace {

Histogram sample_histogram() {
  return Histogram::from_image(
      hebs::image::make_usid(hebs::image::UsidId::kPeppers, 64));
}

TEST(HistogramOps, TruncatePreservesTotalMass) {
  const auto h = sample_histogram();
  const auto t = truncate(h, 50, 200);
  EXPECT_EQ(t.total(), h.total());
}

TEST(HistogramOps, TruncateConfinesMassToBounds) {
  const auto t = truncate(sample_histogram(), 50, 200);
  EXPECT_GE(t.min_level(), 50);
  EXPECT_LE(t.max_level(), 200);
}

TEST(HistogramOps, TruncatePilesClippedMassAtBounds) {
  Histogram h;
  h.add(10, 5);
  h.add(100, 3);
  h.add(240, 7);
  const auto t = truncate(h, 50, 200);
  EXPECT_EQ(t.count(50), 5u);
  EXPECT_EQ(t.count(100), 3u);
  EXPECT_EQ(t.count(200), 7u);
}

TEST(HistogramOps, TruncateValidatesBounds) {
  const auto h = sample_histogram();
  EXPECT_THROW(truncate(h, -1, 100), hebs::util::InvalidArgument);
  EXPECT_THROW(truncate(h, 100, 256), hebs::util::InvalidArgument);
  EXPECT_THROW(truncate(h, 150, 100), hebs::util::InvalidArgument);
}

TEST(HistogramOps, SmoothPreservesTotal) {
  const auto h = sample_histogram();
  for (int radius : {1, 3, 8}) {
    EXPECT_EQ(smooth(h, radius).total(), h.total()) << radius;
  }
}

TEST(HistogramOps, SmoothRadiusZeroIsIdentity) {
  const auto h = sample_histogram();
  EXPECT_EQ(smooth(h, 0), h);
}

TEST(HistogramOps, SmoothSpreadsASpike) {
  Histogram h;
  h.add(100, 1000);
  const auto s = smooth(h, 2);
  EXPECT_GT(s.count(99), 0u);
  EXPECT_GT(s.count(101), 0u);
  EXPECT_LT(s.count(100), 1000u);
}

TEST(HistogramOps, L1DistanceProperties) {
  const auto a = sample_histogram();
  const auto b = Histogram::from_image(
      hebs::image::make_usid(hebs::image::UsidId::kSplash, 64));
  EXPECT_DOUBLE_EQ(l1_distance(a, a), 0.0);
  EXPECT_GT(l1_distance(a, b), 0.0);
  EXPECT_DOUBLE_EQ(l1_distance(a, b), l1_distance(b, a));
  EXPECT_LE(l1_distance(a, b), 2.0);
}

TEST(HistogramOps, ChiSquareProperties) {
  const auto a = sample_histogram();
  const auto b = Histogram::from_image(
      hebs::image::make_usid(hebs::image::UsidId::kSail, 64));
  EXPECT_DOUBLE_EQ(chi_square_distance(a, a), 0.0);
  EXPECT_GT(chi_square_distance(a, b), 0.0);
  EXPECT_DOUBLE_EQ(chi_square_distance(a, b), chi_square_distance(b, a));
}

TEST(HistogramOps, EmdDetectsShifts) {
  Histogram a;
  Histogram b;
  Histogram c;
  a.add(100, 10);
  b.add(101, 10);  // shift by 1 level
  c.add(150, 10);  // shift by 50 levels
  const double small = emd_distance(a, b);
  const double large = emd_distance(a, c);
  EXPECT_GT(large, small * 10);
  EXPECT_DOUBLE_EQ(emd_distance(a, a), 0.0);
}

TEST(HistogramOps, CumulativeUniformMatchesFootnote3) {
  // U(x)=0 below g_min, linear inside, N above g_max.
  EXPECT_DOUBLE_EQ(cumulative_uniform(10.0, 50, 150, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(cumulative_uniform(50.0, 50, 150, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(cumulative_uniform(100.0, 50, 150, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(cumulative_uniform(150.0, 50, 150, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(cumulative_uniform(200.0, 50, 150, 100.0), 100.0);
}

TEST(HistogramOps, ObjectiveIsZeroForPerfectEqualization) {
  // A histogram that is already uniform on [0, 255], transformed by the
  // identity toward target [0, 255], should have (near) zero objective.
  std::vector<std::uint64_t> counts(256, 4);
  const auto h = Histogram::from_counts(counts);
  std::vector<int> identity(256);
  for (int i = 0; i < 256; ++i) identity[static_cast<std::size_t>(i)] = i;
  const double obj = uniform_equalization_objective(h, identity, 0, 255);
  // One-level discretization slack allowed.
  EXPECT_LT(obj, 0.01);
}

TEST(HistogramOps, GheMinimizesTheObjectiveAmongCandidates) {
  // Property check on the paper's Eq. 4: the GHE transform must score no
  // worse than simple competing monotone transforms.
  const auto h = sample_histogram();
  const hebs::core::GheTarget target{0, 150};
  const auto ghe_lut = hebs::core::ghe_lut(h, target);

  auto lut_to_phi = [](const hebs::transform::Lut& lut) {
    std::vector<int> phi(256);
    for (int i = 0; i < 256; ++i) {
      phi[static_cast<std::size_t>(i)] = lut[i];
    }
    return phi;
  };

  const double ghe_obj = uniform_equalization_objective(
      h, lut_to_phi(ghe_lut), target.g_min, target.g_max);

  // Competitor 1: plain linear compression into [0, 150].
  std::vector<int> linear(256);
  for (int i = 0; i < 256; ++i) {
    linear[static_cast<std::size_t>(i)] = i * 150 / 255;
  }
  // Competitor 2: clamp into [0, 150].
  std::vector<int> clamped(256);
  for (int i = 0; i < 256; ++i) {
    clamped[static_cast<std::size_t>(i)] = std::min(i, 150);
  }
  const double lin_obj =
      uniform_equalization_objective(h, linear, target.g_min, target.g_max);
  const double clamp_obj =
      uniform_equalization_objective(h, clamped, target.g_min, target.g_max);
  EXPECT_LE(ghe_obj, lin_obj + 1e-9);
  EXPECT_LE(ghe_obj, clamp_obj + 1e-9);
}

TEST(HistogramOps, ObjectiveValidatesArguments) {
  const auto h = sample_histogram();
  std::vector<int> short_phi(10, 0);
  EXPECT_THROW(uniform_equalization_objective(h, short_phi, 0, 255),
               hebs::util::InvalidArgument);
  std::vector<int> phi(256, 0);
  EXPECT_THROW(uniform_equalization_objective(h, phi, 100, 50),
               hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::histogram
