// Unit tests for PNM file I/O, including malformed-input injection.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "hebs/advanced/image.h"
#include "hebs/advanced/util.h"

namespace hebs::image {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
}

GrayImage random_image(int w, int h, std::uint64_t seed) {
  util::Rng rng(seed);
  GrayImage img(w, h);
  for (auto& p : img.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return img;
}

TEST(PnmIo, BinaryPgmRoundTrip) {
  const auto img = random_image(31, 17, 1);
  const auto path = temp_path("roundtrip.pgm");
  write_pgm(img, path);
  EXPECT_EQ(read_pgm(path), img);
  std::remove(path.c_str());
}

TEST(PnmIo, AsciiPgmRoundTrip) {
  const auto img = random_image(9, 13, 2);
  const auto path = temp_path("roundtrip_ascii.pgm");
  write_pgm_ascii(img, path);
  EXPECT_EQ(read_pgm(path), img);
  std::remove(path.c_str());
}

TEST(PnmIo, BinaryPpmRoundTrip) {
  RgbImage img(5, 4);
  util::Rng rng(3);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 5; ++x) {
      img.set(x, y, {static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                     static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                     static_cast<std::uint8_t>(rng.uniform_int(0, 255))});
    }
  }
  const auto path = temp_path("roundtrip.ppm");
  write_ppm(img, path);
  const RgbImage back = read_ppm(path);
  EXPECT_EQ(back.get(2, 3), img.get(2, 3));
  EXPECT_TRUE(std::equal(back.data().begin(), back.data().end(),
                         img.data().begin()));
  std::remove(path.c_str());
}

TEST(PnmIo, HeaderCommentsAreSkipped) {
  const auto path = temp_path("comments.pgm");
  write_text(path, "P2\n# a comment\n2 1\n# another\n255\n12 34\n");
  const GrayImage img = read_pgm(path);
  EXPECT_EQ(img(0, 0), 12);
  EXPECT_EQ(img(1, 0), 34);
  std::remove(path.c_str());
}

TEST(PnmIo, SmallMaxvalIsRescaledTo255) {
  const auto path = temp_path("maxval.pgm");
  write_text(path, "P2\n2 1\n15\n0 15\n");
  const GrayImage img = read_pgm(path);
  EXPECT_EQ(img(0, 0), 0);
  EXPECT_EQ(img(1, 0), 255);
  std::remove(path.c_str());
}

TEST(PnmIo, MissingFileThrows) {
  EXPECT_THROW(read_pgm("/no/such/file.pgm"), util::IoError);
}

TEST(PnmIo, BadMagicThrows) {
  const auto path = temp_path("badmagic.pgm");
  write_text(path, "P9\n2 2\n255\n");
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, PpmMagicRejectedByPgmReader) {
  const auto path = temp_path("wrongtype.pnm");
  write_text(path, "P6\n1 1\n255\nabc");
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, TruncatedPixelDataThrows) {
  const auto path = temp_path("truncated.pgm");
  write_text(path, "P5\n4 4\n255\nxx");  // 2 bytes instead of 16
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, NonNumericDimensionThrows) {
  const auto path = temp_path("baddim.pgm");
  write_text(path, "P2\ntwo 1\n255\n0\n");
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, NegativeDimensionThrows) {
  const auto path = temp_path("negdim.pgm");
  write_text(path, "P2\n-2 1\n255\n0 0\n");
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, OversizedMaxvalThrows) {
  const auto path = temp_path("bigmaxval.pgm");
  write_text(path, "P2\n1 1\n65535\n0\n");
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, AsciiPixelOutOfRangeThrows) {
  const auto path = temp_path("oob.pgm");
  write_text(path, "P2\n1 1\n100\n101\n");
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, TruncatedPpmPixelDataThrows) {
  const auto path = temp_path("truncated.ppm");
  // 4 of the 12 bytes a 2x2 P6 raster needs.
  write_text(path, "P6\n2 2\n255\nabcd");
  EXPECT_THROW(read_ppm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, TruncatedAsciiPixelDataThrows) {
  const auto path = temp_path("truncated_ascii.pgm");
  write_text(path, "P2\n3 2\n255\n1 2 3\n");  // 3 of 6 samples
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, TruncatedHeaderThrows) {
  const auto path = temp_path("truncated_header.pgm");
  write_text(path, "P5\n4");  // cut off mid-dimensions
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, EmptyFileThrows) {
  const auto path = temp_path("empty.pgm");
  write_text(path, "");
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, BinaryPgmSampleAboveMaxvalThrows) {
  const auto path = temp_path("oob_binary.pgm");
  // maxval 100 with a raw byte of 200: the ASCII path has always
  // rejected this; the binary path used to scale it past 255 and wrap
  // silently through the uint8_t cast.
  std::string data = "P5\n2 1\n100\n";
  data += static_cast<char>(50);
  data += static_cast<char>(200);
  write_text(path, data);
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, BinaryPpmSampleAboveMaxvalThrows) {
  const auto path = temp_path("oob_binary.ppm");
  std::string data = "P6\n1 1\n100\n";
  data += static_cast<char>(10);
  data += static_cast<char>(101);
  data += static_cast<char>(10);
  write_text(path, data);
  EXPECT_THROW(read_ppm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, BinarySamplesAtMaxvalStillScale) {
  const auto path = temp_path("at_maxval.pgm");
  std::string data = "P5\n2 1\n100\n";
  data += static_cast<char>(100);
  data += static_cast<char>(0);
  write_text(path, data);
  const GrayImage img = read_pgm(path);
  EXPECT_EQ(img(0, 0), 255);
  EXPECT_EQ(img(1, 0), 0);
  std::remove(path.c_str());
}

TEST(PnmIo, WritingEmptyImageThrows) {
  GrayImage empty;
  EXPECT_THROW(write_pgm(empty, temp_path("never.pgm")),
               util::InvalidArgument);
}

TEST(PnmIo, WriteToBadPathThrows) {
  GrayImage img(1, 1, 0);
  EXPECT_THROW(write_pgm(img, "/no/such/dir/x.pgm"), util::IoError);
}

}  // namespace
}  // namespace hebs::image
