// Unit tests for PNM file I/O, including malformed-input injection.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "hebs/advanced/image.h"
#include "hebs/advanced/util.h"

namespace hebs::image {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  out << text;
}

GrayImage random_image(int w, int h, std::uint64_t seed) {
  util::Rng rng(seed);
  GrayImage img(w, h);
  for (auto& p : img.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return img;
}

TEST(PnmIo, BinaryPgmRoundTrip) {
  const auto img = random_image(31, 17, 1);
  const auto path = temp_path("roundtrip.pgm");
  write_pgm(img, path);
  EXPECT_EQ(read_pgm(path), img);
  std::remove(path.c_str());
}

TEST(PnmIo, AsciiPgmRoundTrip) {
  const auto img = random_image(9, 13, 2);
  const auto path = temp_path("roundtrip_ascii.pgm");
  write_pgm_ascii(img, path);
  EXPECT_EQ(read_pgm(path), img);
  std::remove(path.c_str());
}

TEST(PnmIo, BinaryPpmRoundTrip) {
  RgbImage img(5, 4);
  util::Rng rng(3);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 5; ++x) {
      img.set(x, y, {static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                     static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                     static_cast<std::uint8_t>(rng.uniform_int(0, 255))});
    }
  }
  const auto path = temp_path("roundtrip.ppm");
  write_ppm(img, path);
  const RgbImage back = read_ppm(path);
  EXPECT_EQ(back.get(2, 3), img.get(2, 3));
  EXPECT_TRUE(std::equal(back.data().begin(), back.data().end(),
                         img.data().begin()));
  std::remove(path.c_str());
}

TEST(PnmIo, HeaderCommentsAreSkipped) {
  const auto path = temp_path("comments.pgm");
  write_text(path, "P2\n# a comment\n2 1\n# another\n255\n12 34\n");
  const GrayImage img = read_pgm(path);
  EXPECT_EQ(img(0, 0), 12);
  EXPECT_EQ(img(1, 0), 34);
  std::remove(path.c_str());
}

TEST(PnmIo, SmallMaxvalIsRescaledTo255) {
  const auto path = temp_path("maxval.pgm");
  write_text(path, "P2\n2 1\n15\n0 15\n");
  const GrayImage img = read_pgm(path);
  EXPECT_EQ(img(0, 0), 0);
  EXPECT_EQ(img(1, 0), 255);
  std::remove(path.c_str());
}

TEST(PnmIo, MissingFileThrows) {
  EXPECT_THROW(read_pgm("/no/such/file.pgm"), util::IoError);
}

TEST(PnmIo, BadMagicThrows) {
  const auto path = temp_path("badmagic.pgm");
  write_text(path, "P9\n2 2\n255\n");
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, PpmMagicRejectedByPgmReader) {
  const auto path = temp_path("wrongtype.pnm");
  write_text(path, "P6\n1 1\n255\nabc");
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, TruncatedPixelDataThrows) {
  const auto path = temp_path("truncated.pgm");
  write_text(path, "P5\n4 4\n255\nxx");  // 2 bytes instead of 16
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, NonNumericDimensionThrows) {
  const auto path = temp_path("baddim.pgm");
  write_text(path, "P2\ntwo 1\n255\n0\n");
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, NegativeDimensionThrows) {
  const auto path = temp_path("negdim.pgm");
  write_text(path, "P2\n-2 1\n255\n0 0\n");
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, OversizedMaxvalThrows) {
  const auto path = temp_path("bigmaxval.pgm");
  write_text(path, "P2\n1 1\n65535\n0\n");
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, AsciiPixelOutOfRangeThrows) {
  const auto path = temp_path("oob.pgm");
  write_text(path, "P2\n1 1\n100\n101\n");
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, TruncatedPpmPixelDataThrows) {
  const auto path = temp_path("truncated.ppm");
  // 4 of the 12 bytes a 2x2 P6 raster needs.
  write_text(path, "P6\n2 2\n255\nabcd");
  EXPECT_THROW(read_ppm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, TruncatedAsciiPixelDataThrows) {
  const auto path = temp_path("truncated_ascii.pgm");
  write_text(path, "P2\n3 2\n255\n1 2 3\n");  // 3 of 6 samples
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, TruncatedHeaderThrows) {
  const auto path = temp_path("truncated_header.pgm");
  write_text(path, "P5\n4");  // cut off mid-dimensions
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, EmptyFileThrows) {
  const auto path = temp_path("empty.pgm");
  write_text(path, "");
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, BinaryPgmSampleAboveMaxvalThrows) {
  const auto path = temp_path("oob_binary.pgm");
  // maxval 100 with a raw byte of 200: the ASCII path has always
  // rejected this; the binary path used to scale it past 255 and wrap
  // silently through the uint8_t cast.
  std::string data = "P5\n2 1\n100\n";
  data += static_cast<char>(50);
  data += static_cast<char>(200);
  write_text(path, data);
  EXPECT_THROW(read_pgm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, BinaryPpmSampleAboveMaxvalThrows) {
  const auto path = temp_path("oob_binary.ppm");
  std::string data = "P6\n1 1\n100\n";
  data += static_cast<char>(10);
  data += static_cast<char>(101);
  data += static_cast<char>(10);
  write_text(path, data);
  EXPECT_THROW(read_ppm(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo, BinarySamplesAtMaxvalStillScale) {
  const auto path = temp_path("at_maxval.pgm");
  std::string data = "P5\n2 1\n100\n";
  data += static_cast<char>(100);
  data += static_cast<char>(0);
  write_text(path, data);
  const GrayImage img = read_pgm(path);
  EXPECT_EQ(img(0, 0), 255);
  EXPECT_EQ(img(1, 0), 0);
  std::remove(path.c_str());
}

TEST(PnmIo, WritingEmptyImageThrows) {
  GrayImage empty;
  EXPECT_THROW(write_pgm(empty, temp_path("never.pgm")),
               util::InvalidArgument);
}

TEST(PnmIo, WriteToBadPathThrows) {
  GrayImage img(1, 1, 0);
  EXPECT_THROW(write_pgm(img, "/no/such/dir/x.pgm"), util::IoError);
}

// ---------------------------------------------------------------------------
// Deep-pixel (maxval > 255) PGM I/O.

GrayImage16 random_image16(int w, int h, int levels, std::uint64_t seed) {
  util::Rng rng(seed);
  GrayImage16 img(w, h, levels);
  for (auto& p : img.pixels()) {
    p = static_cast<std::uint16_t>(rng.uniform_int(0, levels - 1));
  }
  return img;
}

TEST(PnmIo16, SixteenBitRoundTripPreservesRawSamples) {
  const auto img = random_image16(23, 11, 65536, 11);
  const auto path = temp_path("roundtrip16.pgm");
  write_pgm16(img, path);
  const GrayImage16 back = read_pgm16(path);
  EXPECT_EQ(back.levels(), 65536);
  EXPECT_EQ(back, img);
  std::remove(path.c_str());
}

TEST(PnmIo16, TenBitRoundTripKeepsMaxval1023) {
  const auto img = random_image16(16, 9, 1024, 12);
  const auto path = temp_path("roundtrip10.pgm");
  write_pgm16(img, path);
  const GrayImage16 back = read_pgm16(path);
  EXPECT_EQ(back.levels(), 1024);
  EXPECT_EQ(back, img);
  std::remove(path.c_str());
}

TEST(PnmIo16, DeepSamplesAreBigEndianOnDisk) {
  GrayImage16 img(2, 1, 1024);
  img.pixels()[0] = 0x0123;
  img.pixels()[1] = 0x03ff;
  const auto path = temp_path("bigendian.pgm");
  write_pgm16(img, path);
  std::ifstream in(path, std::ios::binary);
  std::string header;
  // Magic, dims, maxval: "P5\n2 1\n1023\n" = 12 bytes.
  header.resize(12);
  in.read(header.data(), 12);
  EXPECT_EQ(header, "P5\n2 1\n1023\n");
  unsigned char bytes[4];
  in.read(reinterpret_cast<char*>(bytes), 4);
  EXPECT_EQ(bytes[0], 0x01);  // most significant byte first
  EXPECT_EQ(bytes[1], 0x23);
  EXPECT_EQ(bytes[2], 0x03);
  EXPECT_EQ(bytes[3], 0xff);
  std::remove(path.c_str());
}

TEST(PnmIo16, ReadsEightBitFileAsOneBytePerSample) {
  const auto img = random_image(7, 5, 13);
  const auto path = temp_path("legacy8to16.pgm");
  write_pgm(img, path);
  const GrayImage16 deep = read_pgm16(path);
  EXPECT_EQ(deep.levels(), 256);
  ASSERT_EQ(deep.width(), img.width());
  ASSERT_EQ(deep.height(), img.height());
  for (std::size_t i = 0; i < img.size(); ++i) {
    EXPECT_EQ(deep.pixels()[i], img.pixels()[i]);
  }
  std::remove(path.c_str());
}

TEST(PnmIo16, AsciiDeepSamplesReadRaw) {
  const auto path = temp_path("ascii16.pgm");
  write_text(path, "P2\n2 2\n1023\n0 512\n1023 7\n");
  const GrayImage16 img = read_pgm16(path);
  EXPECT_EQ(img.levels(), 1024);
  EXPECT_EQ(img(0, 0), 0);
  EXPECT_EQ(img(1, 0), 512);
  EXPECT_EQ(img(0, 1), 1023);
  EXPECT_EQ(img(1, 1), 7);
  std::remove(path.c_str());
}

TEST(PnmIo16, TruncatedDeepPixelDataThrows) {
  const auto path = temp_path("trunc16.pgm");
  // 2x2 at maxval 1023 needs 8 bytes of pixel data; provide 5.
  write_text(path, std::string("P5\n2 2\n1023\n") + "\x01\x02\x03\x04\x05");
  EXPECT_THROW(read_pgm16(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo16, BinarySampleAboveMaxvalThrows) {
  const auto path = temp_path("oob16.pgm");
  // Big-endian 0x0500 = 1280 > maxval 1023.
  write_text(path, std::string("P5\n1 1\n1023\n") + '\x05' + '\x00');
  EXPECT_THROW(read_pgm16(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo16, AsciiSampleAboveMaxvalThrows) {
  const auto path = temp_path("oob16_ascii.pgm");
  write_text(path, "P2\n1 1\n1023\n1024\n");
  EXPECT_THROW(read_pgm16(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo16, MaxvalAbove65535Throws) {
  const auto path = temp_path("hugemaxval.pgm");
  write_text(path, "P2\n1 1\n65536\n0\n");
  EXPECT_THROW(read_pgm16(path), util::IoError);
  std::remove(path.c_str());
}

TEST(PnmIo16, LegacyReaderStillRejectsDeepFiles) {
  const auto img = random_image16(3, 3, 1024, 14);
  const auto path = temp_path("deep_for_legacy.pgm");
  write_pgm16(img, path);
  try {
    read_pgm(path);
    FAIL() << "read_pgm accepted a deep file";
  } catch (const util::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("must be 1..255"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(PnmIo16, WritingEmptyDeepImageThrows) {
  GrayImage16 empty;
  EXPECT_THROW(write_pgm16(empty, temp_path("never16.pgm")),
               util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::image
