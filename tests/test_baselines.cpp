// Tests for the DLS [4] and CBCS [5] baseline policies.
#include <gtest/gtest.h>

#include "hebs/advanced/baseline.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/quality.h"
#include "hebs/advanced/transform.h"
#include "hebs/advanced/util.h"

namespace hebs::baseline {
namespace {

using hebs::core::evaluate_operating_point;
using hebs::core::OperatingPoint;
using hebs::image::UsidId;

const hebs::power::LcdSubsystemPower& model() {
  static const auto m = hebs::power::LcdSubsystemPower::lp064v1();
  return m;
}

TEST(Dls, OperatingPointScalesPhiByBeta) {
  // Brightness mode at β = 0.7: ψ(0) = 0.7·0.3 = 0.21, ψ(0.7) = 0.7.
  const auto p =
      dls_operating_point(DlsMode::kBrightnessCompensation, 0.7);
  EXPECT_NEAR(p.beta, 0.7, 1e-12);
  EXPECT_NEAR(p.luminance_transform(0.0), 0.21, 1e-9);
  EXPECT_NEAR(p.luminance_transform(0.7), 0.7, 1e-9);
  EXPECT_NEAR(p.luminance_transform(1.0), 0.7, 1e-9);
}

TEST(Dls, ContrastModePreservesDarkLuminance) {
  // ψ(x) = min(β, x): dark pixels keep exact luminance.
  const auto p = dls_operating_point(DlsMode::kContrastEnhancement, 0.5);
  EXPECT_NEAR(p.luminance_transform(0.2), 0.2, 1e-9);
  EXPECT_NEAR(p.luminance_transform(0.5), 0.5, 1e-9);
  EXPECT_NEAR(p.luminance_transform(0.9), 0.5, 1e-9);
}

TEST(Dls, PolicyNamesDistinguishModes) {
  EXPECT_EQ(DlsPolicy(DlsMode::kBrightnessCompensation).name(),
            "DLS-brightness");
  EXPECT_EQ(DlsPolicy(DlsMode::kContrastEnhancement).name(),
            "DLS-contrast");
}

TEST(Dls, ChooseMeetsTheDistortionBudget) {
  const auto img = hebs::image::make_usid(UsidId::kLena, 64);
  for (DlsMode mode : {DlsMode::kBrightnessCompensation,
                       DlsMode::kContrastEnhancement}) {
    const DlsPolicy policy(mode);
    const OperatingPoint p = policy.choose(img, 10.0);
    const auto eval = evaluate_operating_point(img, p, model());
    EXPECT_LE(eval.distortion_percent, 10.0 + 0.2)
        << policy.name();
  }
}

TEST(Dls, LooserBudgetDimsDeeper) {
  const auto img = hebs::image::make_usid(UsidId::kGirl, 64);
  const DlsPolicy policy(DlsMode::kContrastEnhancement);
  const double beta_tight = policy.choose(img, 3.0).beta;
  const double beta_loose = policy.choose(img, 25.0).beta;
  EXPECT_LT(beta_loose, beta_tight);
}

TEST(Dls, ZeroBudgetKeepsFullBacklight) {
  const auto img = hebs::image::make_usid(UsidId::kBaboon, 64);
  const DlsPolicy policy(DlsMode::kBrightnessCompensation);
  EXPECT_NEAR(policy.choose(img, 0.0).beta, 1.0, 1e-6);
}

TEST(Dls, SaturationPolicyRespectsTheClippingBudget) {
  const auto img = hebs::image::make_usid(UsidId::kSail, 64);
  const DlsPolicy policy(DlsMode::kContrastEnhancement);
  const OperatingPoint p = policy.choose_by_saturation(img, 0.05);
  // Verify via the original measure: saturated fraction of Φ at that β.
  const auto lut =
      hebs::transform::contrast_stretch_curve(p.beta).to_lut();
  EXPECT_LE(hebs::quality::saturated_fraction(img, lut), 0.05 + 0.01);
}

TEST(Dls, SaturationPolicyDimsDarkImagesAggressively) {
  // A dark image has few pixels to clip: the policy should dim deeply.
  const auto img = hebs::image::make_usid(UsidId::kSplash, 64);
  const DlsPolicy policy(DlsMode::kContrastEnhancement);
  EXPECT_LT(policy.choose_by_saturation(img, 0.05).beta, 0.7);
}

TEST(Dls, ValidatesArguments) {
  const auto img = hebs::image::make_usid(UsidId::kLena, 32);
  const DlsPolicy policy(DlsMode::kBrightnessCompensation);
  EXPECT_THROW((void)policy.choose(img, -1.0),
               hebs::util::InvalidArgument);
  EXPECT_THROW((void)policy.choose_by_saturation(img, 1.5),
               hebs::util::InvalidArgument);
  EXPECT_THROW((void)dls_operating_point(DlsMode::kContrastEnhancement, 0.0),
               hebs::util::InvalidArgument);
}

TEST(Cbcs, OperatingPointCombinesBandAndBeta) {
  const auto p = cbcs_operating_point(0.2, 0.8, 0.6);
  EXPECT_NEAR(p.beta, 0.6, 1e-12);
  EXPECT_NEAR(p.luminance_transform(0.1), 0.0, 1e-9);   // below band
  EXPECT_NEAR(p.luminance_transform(0.5), 0.3, 1e-9);   // β·0.5
  EXPECT_NEAR(p.luminance_transform(0.9), 0.6, 1e-9);   // β·1
}

TEST(Cbcs, ChooseMeetsTheDistortionBudget) {
  const auto img = hebs::image::make_usid(UsidId::kPeppers, 64);
  const CbcsPolicy policy;
  const OperatingPoint p = policy.choose(img, 12.0);
  const auto eval = evaluate_operating_point(img, p, model());
  EXPECT_LE(eval.distortion_percent, 12.0 + 1e-9);
}

TEST(Cbcs, FindsSavingsOnNarrowHistogramImages) {
  // Pout's narrow histogram is CBCS's best case: big truncation, deep
  // dimming.
  const auto img = hebs::image::make_usid(UsidId::kPout, 64);
  const CbcsPolicy policy;
  const OperatingPoint p = policy.choose(img, 10.0);
  const auto eval = evaluate_operating_point(img, p, model());
  EXPECT_GT(eval.saving_percent, 20.0);
}

TEST(Cbcs, ImpossibleBudgetFallsBackToIdentity) {
  const auto img = hebs::image::make_usid(UsidId::kBaboon, 64);
  const CbcsPolicy policy;
  const OperatingPoint p = policy.choose(img, 0.0);
  EXPECT_NEAR(p.beta, 1.0, 1e-9);
}

TEST(Cbcs, BeatsOrMatchesDlsOnBandFriendlyImages) {
  // The paper positions CBCS above DLS; verify on an image with unused
  // headroom at both histogram ends.
  const auto img = hebs::image::make_usid(UsidId::kPout, 64);
  const double budget = 10.0;
  const CbcsPolicy cbcs;
  const DlsPolicy dls(DlsMode::kBrightnessCompensation);
  const auto cbcs_eval =
      evaluate_operating_point(img, cbcs.choose(img, budget), model());
  const auto dls_eval =
      evaluate_operating_point(img, dls.choose(img, budget), model());
  EXPECT_GE(cbcs_eval.saving_percent + 1.0, dls_eval.saving_percent);
}

TEST(Cbcs, PolicyNameIsCbcs) {
  EXPECT_EQ(CbcsPolicy().name(), "CBCS");
}

TEST(Cbcs, ValidatesArguments) {
  EXPECT_THROW((void)cbcs_operating_point(0.5, 0.4, 0.5),
               hebs::util::InvalidArgument);
  EXPECT_THROW((void)cbcs_operating_point(0.2, 0.8, 0.0),
               hebs::util::InvalidArgument);
  CbcsOptions bad;
  bad.beta_blend.clear();
  EXPECT_THROW(CbcsPolicy{bad}, hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::baseline
