// Tests for system-level power accounting and the battery model.
#include <gtest/gtest.h>

#include "hebs/advanced/power.h"
#include "hebs/advanced/util.h"

namespace hebs::power {
namespace {

TEST(SystemProfile, SmartbadgeMatchesRef1) {
  const auto p = SystemPowerProfile::smartbadge();
  EXPECT_DOUBLE_EQ(p.display_fraction(SystemMode::kActive), 0.286);
  EXPECT_DOUBLE_EQ(p.display_fraction(SystemMode::kIdle), 0.286);
  EXPECT_DOUBLE_EQ(p.display_fraction(SystemMode::kStandby), 0.50);
}

TEST(SystemProfile, SystemSavingScalesByDisplayFraction) {
  const auto p = SystemPowerProfile::smartbadge();
  // The paper's §1 claim: 15% extra display saving -> ~3% system saving
  // in active mode (0.286 * 15% = 4.3%; the paper's 3% accounts for an
  // already partially dimmed baseline — we check the order).
  const double sys = system_saving_percent(p, SystemMode::kActive, 15.0);
  EXPECT_NEAR(sys, 4.29, 0.01);
  EXPECT_GT(sys, 2.0);
  EXPECT_LT(sys, 6.0);
}

TEST(SystemProfile, StandbyModeWeighsDisplayMore) {
  const auto p = SystemPowerProfile::smartbadge();
  EXPECT_GT(system_saving_percent(p, SystemMode::kStandby, 10.0),
            system_saving_percent(p, SystemMode::kActive, 10.0));
}

TEST(SystemProfile, ValidatesPercentage) {
  const auto p = SystemPowerProfile::smartbadge();
  EXPECT_THROW(system_saving_percent(p, SystemMode::kActive, -1.0),
               hebs::util::InvalidArgument);
  EXPECT_THROW(system_saving_percent(p, SystemMode::kActive, 101.0),
               hebs::util::InvalidArgument);
}

TEST(Battery, RuntimeAtReferenceLoadIsCapacityOverPower) {
  const BatteryModel battery(10.0, 2.0, 1.1);
  EXPECT_NEAR(battery.runtime_hours(2.0), 5.0, 1e-12);
}

TEST(Battery, PeukertPenalizesHighDraw) {
  const BatteryModel battery(10.0, 2.0, 1.2);
  // Doubling the load must cut runtime by more than half.
  EXPECT_LT(battery.runtime_hours(4.0), battery.runtime_hours(2.0) / 2.0);
}

TEST(Battery, UnityPeukertIsIdealEnergySource) {
  const BatteryModel battery(10.0, 2.0, 1.0);
  EXPECT_NEAR(battery.runtime_hours(4.0), 2.5, 1e-12);
  EXPECT_NEAR(battery.runtime_hours(1.0), 10.0, 1e-12);
}

TEST(Battery, RuntimeExtensionFromPowerSaving) {
  const BatteryModel battery(10.0, 2.0, 1.0);
  // 25% less draw -> 33% more runtime for an ideal source.
  EXPECT_NEAR(battery.runtime_extension_percent(2.0, 1.5), 33.333, 0.01);
}

TEST(Battery, ExtensionExceedsSavingWithPeukert) {
  // The Peukert effect compounds: lower draw also unlocks capacity.
  const BatteryModel battery(10.0, 2.0, 1.15);
  const double ideal =
      BatteryModel(10.0, 2.0, 1.0).runtime_extension_percent(2.0, 1.5);
  EXPECT_GT(battery.runtime_extension_percent(2.0, 1.5), ideal);
}

TEST(Battery, ValidatesArguments) {
  EXPECT_THROW(BatteryModel(0.0, 2.0), hebs::util::InvalidArgument);
  EXPECT_THROW(BatteryModel(10.0, 0.0), hebs::util::InvalidArgument);
  EXPECT_THROW(BatteryModel(10.0, 2.0, 2.5), hebs::util::InvalidArgument);
  const BatteryModel battery(10.0, 2.0);
  EXPECT_THROW((void)battery.runtime_hours(0.0),
               hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::power
