// Cross-depth parity for the depth-generalized pipeline.
//
// The depth refactor's contract (DESIGN.md §15) is that nothing in the
// decision machinery depends on the 8-bit lattice: a u16 frame holding
// 8-bit content — every sample an exact ratio-widened copy of a u8
// sample — must normalize to the *same doubles* (257 v / 65535 == v / 255
// exactly in IEEE arithmetic, since 65535 = 257 * 255 and division is
// correctly rounded), and therefore every measurement taken from it
// (histogram mass, distortion, power, β) must be bit-identical to the
// u8 path.  These tests pin that invariant end to end: the widening
// identity itself, histogram mirroring, the evaluator, the BBHE
// decision (the first fully depth-generic policy), the deep Session
// facade with its typed error surface, and backend bit-identity of a
// deep decision under every compiled SIMD backend.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "hebs/advanced/core.h"
#include "hebs/advanced/histogram.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/kernels.h"
#include "hebs/advanced/pipeline.h"
#include "hebs/advanced/util.h"
#include "hebs/hebs.h"

namespace hebs::pipeline {
namespace {

using hebs::ImageView;
using hebs::Session;
using hebs::SessionConfig;
using hebs::StatusCode;
using hebs::image::GrayImage;
using hebs::image::GrayImage16;
using hebs::image::UsidId;

const hebs::power::LcdSubsystemPower& model() {
  static const auto m = hebs::power::LcdSubsystemPower::lp064v1();
  return m;
}

/// Widens to the full 16-bit lattice, where the ratio is the exact
/// integer 257 and normalization is double-for-double identical.
GrayImage16 widen16(const GrayImage& g) {
  return GrayImage16::widen(g, 65536);
}

GrayImage random_gray(int w, int h, std::uint64_t seed) {
  util::Rng rng(seed);
  GrayImage img(w, h);
  for (auto& p : img.pixels()) {
    p = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return img;
}

// ---------------------------------------------------------------- widening

TEST(DepthParity, WidenTo16BitIsExactRatioAndNormalizationInvariant) {
  for (int v = 0; v < 256; ++v) {
    const GrayImage src(1, 1, static_cast<std::uint8_t>(v));
    const GrayImage16 wide = widen16(src);
    ASSERT_EQ(wide(0, 0), v * 257);
    // The load-bearing identity: both depths normalize a widened
    // sample to the bit-identical double.
    const double x8 = static_cast<double>(v) / 255.0;
    const double x16 = static_cast<double>(v * 257) / 65535.0;
    ASSERT_EQ(x8, x16) << "level " << v;
  }
}

TEST(DepthParity, WidenedHistogramMirrorsU8) {
  const auto img = hebs::image::make_usid(UsidId::kPeppers, 48);
  const auto hist8 = hebs::histogram::Histogram::from_image(img);
  const auto hist16 = hebs::histogram::Histogram::from_image(widen16(img));
  ASSERT_EQ(hist16.bins(), 65536);
  EXPECT_EQ(hist16.total(), hist8.total());
  EXPECT_EQ(hist16.min_level(), hist8.min_level() * 257);
  EXPECT_EQ(hist16.max_level(), hist8.max_level() * 257);
  std::uint64_t mirrored = 0;
  for (int v = 0; v < 256; ++v) {
    EXPECT_EQ(hist16.count(v * 257), hist8.count(v)) << "level " << v;
    mirrored += hist16.count(v * 257);
  }
  // No mass leaks onto off-lattice levels.
  EXPECT_EQ(mirrored, hist16.total());
}

// --------------------------------------------------------------- evaluator

/// The exact pipeline's decision on the u8 frame, re-measured on the
/// widened frame at the *same operating point*, must reproduce every
/// number bit-identically: distortion, panel/CCFL power, saving.
TEST(DepthParity, EvaluatorIsBitIdenticalAtTheSameOperatingPoint) {
  for (UsidId id : {UsidId::kLena, UsidId::kPout, UsidId::kSplash}) {
    const auto img = hebs::image::make_usid(id, 48);
    FrameContext ctx8(img, {}, model());
    const core::HebsResult r8 = run_exact(ctx8, 10.0);

    const GrayImage16 wide = widen16(img);  // FrameContext borrows the image
    FrameContext ctx16(wide, {}, model());
    const core::EvaluatedPoint e16 = ctx16.evaluate_lean(r8.point);
    EXPECT_EQ(e16.distortion_percent, r8.evaluation.distortion_percent);
    EXPECT_EQ(e16.saving_percent, r8.evaluation.saving_percent);
    EXPECT_EQ(e16.power.ccfl_watts, r8.evaluation.power.ccfl_watts);
    EXPECT_EQ(e16.power.panel_watts, r8.evaluation.power.panel_watts);
    EXPECT_EQ(e16.reference_power.total(), r8.evaluation.reference_power.total());
  }
}

// -------------------------------------------------------------------- bbhe

TEST(Bbhe, TransformIsMonotoneAndPreservesNativeEndpoints) {
  const auto img = hebs::image::make_usid(UsidId::kLena, 48);
  FrameContext ctx(img, {}, model());
  const auto curve = bbhe_transform(ctx);
  const auto& hist = ctx.histogram();
  const double maxv = static_cast<double>(hist.bins() - 1);

  double prev = -1.0;
  for (const auto& pt : curve.points()) {
    EXPECT_GE(pt.y, prev);
    prev = pt.y;
  }
  const double lo = static_cast<double>(hist.min_level()) / maxv;
  const double hi = static_cast<double>(hist.max_level()) / maxv;
  EXPECT_EQ(curve(lo), lo);
  EXPECT_EQ(curve(hi), hi);
}

TEST(Bbhe, ApproximatelyPreservesMeanBrightness) {
  // Kim's property: the equalized output mean stays near the input
  // mean (exactly at the mean for the ideal continuous histogram; a
  // discrete raster lands close).  A plain GHE drags a dark image's
  // mean toward mid-gray; BBHE must not.
  const auto img = hebs::image::make_usid(UsidId::kPout, 64);
  FrameContext ctx(img, {}, model());
  const auto curve = bbhe_transform(ctx);
  double in_mean = 0.0;
  double out_mean = 0.0;
  for (const std::uint8_t p : img.pixels()) {
    in_mean += p / 255.0;
    out_mean += curve(p / 255.0);
  }
  in_mean /= static_cast<double>(img.size());
  out_mean /= static_cast<double>(img.size());
  EXPECT_NEAR(out_mean, in_mean, 0.08);
}

TEST(Bbhe, HonorsTheDistortionBudgetOrPinsBetaAtOne) {
  for (const double budget : {0.5, 5.0, 20.0}) {
    for (UsidId id : {UsidId::kLena, UsidId::kPeppers}) {
      const auto img = hebs::image::make_usid(id, 48);
      FrameContext ctx(img, {}, model());
      const core::HebsResult r = run_bbhe(ctx, budget);
      if (r.point.beta < 1.0) {
        EXPECT_LE(r.evaluation.distortion_percent, budget);
      }
      EXPECT_GT(r.point.beta, 0.0);
      EXPECT_LE(r.point.beta, 1.0);
      EXPECT_FALSE(r.evaluation.transformed.empty());
    }
  }
}

TEST(Bbhe, InfeasibleBudgetContainsAtBetaOne) {
  const auto img = hebs::image::make_usid(UsidId::kLena, 48);
  FrameContext ctx(img, {}, model());
  const core::HebsResult r = run_bbhe(ctx, 0.0);
  EXPECT_EQ(r.point.beta, 1.0);
}

TEST(Bbhe, RunsOnTheTenBitLattice) {
  const auto img = GrayImage16::widen(hebs::image::make_usid(UsidId::kPeppers, 48), 1024);
  FrameContext ctx(img, {}, model());
  const core::HebsResult r = run_bbhe(ctx, 10.0);
  EXPECT_GT(r.point.beta, 0.0);
  EXPECT_LE(r.point.beta, 1.0);
  EXPECT_FALSE(r.evaluation.transformed16.empty());
  EXPECT_EQ(r.evaluation.transformed16.levels(), 1024);
}

/// The cross-depth parity fuzz the satellite asks for: u16 frames
/// holding 8-bit content decide bit-identically (β, distortion,
/// saving, power, mean-split target after level scaling) and render to
/// the same physical luminances on their own lattice.
TEST(DepthParity, BbheDecisionFuzzU16MirrorsU8) {
  util::Rng rng(20260808);
  for (int iter = 0; iter < 12; ++iter) {
    // Floor of 8: the UIQI distortion window needs block_size pixels.
    const int w = static_cast<int>(rng.uniform_int(8, 40));
    const int h = static_cast<int>(rng.uniform_int(8, 40));
    const GrayImage img = random_gray(w, h, rng.uniform_int(0, 1 << 30));
    const double budget = iter % 3 == 0 ? 2.0 : (iter % 3 == 1 ? 10.0 : 30.0);
    const std::string what =
        "iter " + std::to_string(iter) + " " + std::to_string(w) + "x" +
        std::to_string(h) + " budget " + std::to_string(budget);

    FrameContext ctx8(img, {}, model());
    const core::HebsResult r8 = run_bbhe(ctx8, budget);
    const GrayImage16 wide = widen16(img);  // FrameContext borrows the image
    FrameContext ctx16(wide, {}, model());
    const core::HebsResult r16 = run_bbhe(ctx16, budget);

    EXPECT_EQ(r16.point.beta, r8.point.beta) << what;
    EXPECT_EQ(r16.target.g_min, r8.target.g_min * 257) << what;
    EXPECT_EQ(r16.target.g_max, r8.target.g_max * 257) << what;
    EXPECT_EQ(r16.evaluation.distortion_percent,
              r8.evaluation.distortion_percent)
        << what;
    EXPECT_EQ(r16.evaluation.saving_percent, r8.evaluation.saving_percent)
        << what;
    EXPECT_EQ(r16.evaluation.power.ccfl_watts, r8.evaluation.power.ccfl_watts)
        << what;
    EXPECT_EQ(r16.evaluation.power.panel_watts,
              r8.evaluation.power.panel_watts)
        << what;

    // The composite curves agree as functions: sampled at every u8
    // breakpoint position they produce the same double.
    for (int v = 0; v < 256; ++v) {
      const double x = static_cast<double>(v) / 255.0;
      ASSERT_EQ(r16.lambda(x), r8.lambda(x)) << what << " level " << v;
    }

    // Rendered rasters quantize the same real luminance onto their own
    // lattices — equal to within half a u8 step plus half a u16 step.
    const auto& d8 = r8.evaluation.transformed;
    const auto& d16 = r16.evaluation.transformed16;
    ASSERT_EQ(d16.width(), d8.width()) << what;
    ASSERT_EQ(d16.levels(), 65536) << what;
    constexpr double kHalfSteps = 0.5 / 255.0 + 0.5 / 65535.0;
    for (std::size_t i = 0; i < d8.size(); ++i) {
      ASSERT_NEAR(d16.pixels()[i] / 65535.0, d8.pixels()[i] / 255.0,
                  kHalfSteps)
          << what << " pixel " << i;
    }
  }
}

// ----------------------------------------------------------------- session

ImageView view_of(const GrayImage& img) {
  return ImageView::gray8(img.pixels().data(), img.width(), img.height());
}

ImageView view_of(const GrayImage16& img) {
  return ImageView::gray16(img.pixels().data(), img.width(), img.height());
}

/// A 10-bit synthetic clip: the album widened onto the 1024-level
/// lattice with deterministic off-lattice noise so the content
/// genuinely exercises levels no 8-bit frame can hold.
std::vector<GrayImage16> ten_bit_clip(int size) {
  std::vector<GrayImage16> clip;
  util::Rng rng(77);
  for (UsidId id : {UsidId::kLena, UsidId::kPeppers, UsidId::kPout}) {
    GrayImage16 frame =
        GrayImage16::widen(hebs::image::make_usid(id, size), 1024);
    for (auto& p : frame.pixels()) {
      const int jitter = static_cast<int>(rng.uniform_int(0, 6)) - 3;
      const int v = std::max(0, std::min(1023, static_cast<int>(p) + jitter));
      p = static_cast<std::uint16_t>(v);
    }
    clip.push_back(std::move(frame));
  }
  return clip;
}

Session make_session(SessionConfig config) {
  auto session = Session::create(std::move(config));
  EXPECT_TRUE(session.has_value()) << session.status().to_string();
  return std::move(session).value();
}

TEST(DeepSession, ProcessesTenBitFramesEndToEnd) {
  for (const char* policy : {"hebs-exact", "bbhe"}) {
    auto session = make_session(SessionConfig().bit_depth(10).policy(policy));
    for (const GrayImage16& frame : ten_bit_clip(48)) {
      auto result = session.process({view_of(frame), 10.0});
      ASSERT_TRUE(result.has_value())
          << policy << ": " << result.status().to_string();
      EXPECT_TRUE(result->displayed.empty()) << policy;
      ASSERT_FALSE(result->displayed16.empty()) << policy;
      EXPECT_EQ(result->displayed16.levels(), 1024) << policy;
      EXPECT_EQ(result->displayed16.width(), frame.width()) << policy;
      EXPECT_GT(result->beta, 0.0) << policy;
      EXPECT_LE(result->beta, 1.0) << policy;
      for (const std::uint16_t p : result->displayed16.pixels()) {
        EXPECT_LT(p, 1024) << policy;
      }
    }
  }
}

TEST(DeepSession, BatchMatchesSingleFrameDecisions) {
  for (const char* policy : {"hebs-exact", "bbhe"}) {
    auto session = make_session(SessionConfig().bit_depth(10).policy(policy));
    const auto clip = ten_bit_clip(32);
    std::vector<ImageView> views;
    views.reserve(clip.size());
    for (const auto& f : clip) views.push_back(view_of(f));
    auto batch = session.process_batch(views, 10.0);
    ASSERT_TRUE(batch.has_value())
        << policy << ": " << batch.status().to_string();
    ASSERT_EQ(batch->size(), clip.size());
    for (std::size_t i = 0; i < clip.size(); ++i) {
      auto single = session.process({view_of(clip[i]), 10.0});
      ASSERT_TRUE(single.has_value()) << policy;
      EXPECT_EQ((*batch)[i].beta, single->beta) << policy << " frame " << i;
      EXPECT_EQ((*batch)[i].displayed16.pixels(),
                single->displayed16.pixels())
          << policy << " frame " << i;
    }
  }
}

TEST(DeepSession, FixedRangeWorksWithHebsExactOnly) {
  const auto clip = ten_bit_clip(32);
  auto exact = make_session(SessionConfig().bit_depth(10));
  auto result = exact.process({view_of(clip[0]), 10.0, 600});
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  EXPECT_LE(result->g_max, 1023);
  EXPECT_FALSE(result->displayed16.empty());

  auto bbhe = make_session(SessionConfig().bit_depth(10).policy("bbhe"));
  EXPECT_EQ(bbhe.process({view_of(clip[0]), 10.0, 600}).status().code(),
            StatusCode::kInvalidOption);
}

TEST(DeepSession, SixteenBitSessionAcceptsFullLattice) {
  // BBHE, a fixed-range hebs-exact run and the unconstrained hebs-exact
  // *search* all cover the full 65536-level lattice end to end.  The
  // search is tier-1-affordable only because plc_coarsen caps its DP
  // candidates (kMaxDpPoints) — without the cap each probed range costs
  // ~30 s on a dense 16-bit GHE curve.
  const auto img = widen16(hebs::image::make_usid(UsidId::kLena, 32));

  auto bbhe = make_session(SessionConfig().bit_depth(16).policy("bbhe"));
  auto result = bbhe.process({view_of(img), 10.0});
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  EXPECT_EQ(result->displayed16.levels(), 65536);

  auto exact = make_session(SessionConfig().bit_depth(16));
  auto fixed = exact.process({view_of(img), 10.0, 40000});
  ASSERT_TRUE(fixed.has_value()) << fixed.status().to_string();
  EXPECT_EQ(fixed->displayed16.levels(), 65536);
  EXPECT_LE(fixed->g_max, 65535);

  auto searched = exact.process({view_of(img), 10.0});
  ASSERT_TRUE(searched.has_value()) << searched.status().to_string();
  EXPECT_EQ(searched->displayed16.levels(), 65536);
  EXPECT_LE(searched->distortion_percent, 10.0 + 1e-9);
}

// ------------------------------------------------------------ typed errors

TEST(DeepSession, RejectsUnsupportedBitDepthAtCreate) {
  for (const int bits : {0, 7, 12, 24}) {
    auto session = Session::create(SessionConfig().bit_depth(bits));
    ASSERT_FALSE(session.has_value()) << bits;
    EXPECT_EQ(session.status().code(), StatusCode::kUnknownDepth) << bits;
  }
}

TEST(DeepSession, DepthMismatchedViewsAreTypedErrors) {
  const auto img8 = hebs::image::make_usid(UsidId::kLena, 32);
  const auto img16 = GrayImage16::widen(img8, 1024);

  auto shallow = make_session(SessionConfig());
  EXPECT_EQ(shallow.process({view_of(img16), 10.0}).status().code(),
            StatusCode::kUnknownDepth);

  auto deep = make_session(SessionConfig().bit_depth(10));
  EXPECT_EQ(deep.process({view_of(img8), 10.0}).status().code(),
            StatusCode::kUnknownDepth);
  const std::vector<ImageView> mixed = {view_of(img16), view_of(img8)};
  EXPECT_EQ(deep.process_batch(mixed, 10.0).status().code(),
            StatusCode::kUnknownDepth);
}

TEST(DeepSession, OverDepthSampleIsInvalidImage) {
  GrayImage16 img(4, 4, 65536, 1024);  // sample 1024 overflows 10-bit
  auto deep = make_session(SessionConfig().bit_depth(10));
  EXPECT_EQ(deep.process({view_of(img), 10.0}).status().code(),
            StatusCode::kInvalidImage);
}

TEST(DeepSession, NonDepthGenericPoliciesAreRejected) {
  for (const char* policy : {"dls", "cbcs", "hebs-curve"}) {
    auto session =
        make_session(SessionConfig().bit_depth(10).policy(policy));
    const auto img = GrayImage16::widen(
        hebs::image::make_usid(UsidId::kLena, 32), 1024);
    EXPECT_EQ(session.process({view_of(img), 10.0}).status().code(),
              StatusCode::kInvalidOption)
        << policy;
  }
}

TEST(DeepSession, ColorAndVideoAreRejected) {
  auto session = make_session(SessionConfig().bit_depth(10));
  const auto img = GrayImage16::widen(
      hebs::image::make_usid(UsidId::kLena, 32), 1024);
  const std::vector<ImageView> frames = {view_of(img)};
  EXPECT_EQ(session.process_video(frames, 10.0).status().code(),
            StatusCode::kInvalidOption);
  EXPECT_EQ(session.process_batch_color(frames, 10.0).status().code(),
            StatusCode::kInvalidOption);
}

// -------------------------------------------------------- backend identity

/// Restores the process-global kernel backend when a test switches it.
class BackendGuard {
 public:
  BackendGuard() : saved_(hebs::kernels::active().name) {}
  ~BackendGuard() { hebs::kernels::set_backend(saved_); }

 private:
  std::string saved_;
};

/// A deep Session decision must be bit-identical under every compiled
/// SIMD backend — the u16 kernels inherit the §8 contract.
TEST(DeepSession, DecisionIsBitIdenticalAcrossBackends) {
  const BackendGuard guard;
  const auto clip = ten_bit_clip(40);

  ASSERT_EQ(hebs::kernels::set_backend("scalar"),
            hebs::kernels::SetBackendResult::kOk);
  std::vector<hebs::FrameResult> reference;
  {
    auto session = make_session(SessionConfig().bit_depth(10));
    for (const auto& f : clip) {
      auto r = session.process({view_of(f), 10.0});
      ASSERT_TRUE(r.has_value()) << r.status().to_string();
      reference.push_back(std::move(*r));
    }
  }

  for (const auto& info : hebs::kernels::backends()) {
    if (!info.supported) continue;
    ASSERT_EQ(hebs::kernels::set_backend(info.set->name),
              hebs::kernels::SetBackendResult::kOk);
    auto session = make_session(SessionConfig().bit_depth(10));
    for (std::size_t i = 0; i < clip.size(); ++i) {
      auto r = session.process({view_of(clip[i]), 10.0});
      ASSERT_TRUE(r.has_value()) << info.set->name;
      EXPECT_EQ(r->beta, reference[i].beta) << info.set->name;
      EXPECT_EQ(r->distortion_percent, reference[i].distortion_percent)
          << info.set->name;
      EXPECT_EQ(r->displayed16.pixels(), reference[i].displayed16.pixels())
          << info.set->name << " frame " << i;
    }
  }
}

}  // namespace
}  // namespace hebs::pipeline
