// Tests for Piecewise Linear Coarsening (the Eq. 9 dynamic program).
#include <gtest/gtest.h>

#include <chrono>

#include "hebs/advanced/core.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/util.h"

namespace hebs::core {
namespace {

using hebs::transform::CurvePoint;
using hebs::transform::PwlCurve;

PwlCurve sample_exact_curve(hebs::image::UsidId id = hebs::image::UsidId::kLena) {
  const auto img = hebs::image::make_usid(id, 64);
  const auto hist = hebs::histogram::Histogram::from_image(img);
  return ghe_transform(hist, GheTarget{0, 150});
}

TEST(Plc, ReturnsExactCurveWhenBudgetIsGenerous) {
  const PwlCurve c({{0.0, 0.0}, {0.5, 0.2}, {1.0, 1.0}});
  const PlcResult r = plc_coarsen(c, 10);
  EXPECT_EQ(r.curve.points().size(), 3u);
  EXPECT_DOUBLE_EQ(r.mse, 0.0);
}

TEST(Plc, EndpointsAreAlwaysPreserved) {
  const auto exact = sample_exact_curve();
  for (int m : {1, 2, 4, 8}) {
    const PlcResult r = plc_coarsen(exact, m);
    EXPECT_DOUBLE_EQ(r.curve.points().front().x, exact.points().front().x);
    EXPECT_DOUBLE_EQ(r.curve.points().front().y, exact.points().front().y);
    EXPECT_DOUBLE_EQ(r.curve.points().back().x, exact.points().back().x);
    EXPECT_DOUBLE_EQ(r.curve.points().back().y, exact.points().back().y);
  }
}

TEST(Plc, BreakpointsAreASubsetOfTheExactCurve) {
  const auto exact = sample_exact_curve();
  const PlcResult r = plc_coarsen(exact, 6);
  for (std::size_t idx : r.breakpoint_indices) {
    ASSERT_LT(idx, exact.points().size());
  }
  ASSERT_EQ(r.breakpoint_indices.size(), r.curve.points().size());
  for (std::size_t i = 0; i < r.breakpoint_indices.size(); ++i) {
    const auto& p = exact.points()[r.breakpoint_indices[i]];
    EXPECT_DOUBLE_EQ(r.curve.points()[i].x, p.x);
    EXPECT_DOUBLE_EQ(r.curve.points()[i].y, p.y);
  }
}

TEST(Plc, SegmentBudgetIsRespected) {
  const auto exact = sample_exact_curve();
  for (int m : {1, 2, 3, 4, 8, 16}) {
    EXPECT_LE(plc_coarsen(exact, m).curve.segment_count(), m) << m;
  }
}

/// Property sweep: the optimal error is non-increasing in the segment
/// budget (Eq. 9's DP is monotone in m).
class PlcErrorMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PlcErrorMonotone, MoreSegmentsNeverHurt) {
  const auto exact = sample_exact_curve(
      hebs::image::kAllUsidIds[static_cast<std::size_t>(GetParam())]);
  double prev = plc_coarsen(exact, 1).mse;
  for (int m = 2; m <= 16; m *= 2) {
    const double cur = plc_coarsen(exact, m).mse;
    EXPECT_LE(cur, prev + 1e-12) << "m=" << m;
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Images, PlcErrorMonotone, ::testing::Range(0, 8));

TEST(Plc, SingleSegmentOfALineIsExact) {
  std::vector<CurvePoint> pts;
  for (int i = 0; i <= 20; ++i) {
    const double x = i / 20.0;
    pts.push_back({x, 0.3 + 0.4 * x});
  }
  const PlcResult r = plc_coarsen(PwlCurve(std::move(pts)), 1);
  EXPECT_NEAR(r.mse, 0.0, 1e-15);
  EXPECT_EQ(r.curve.segment_count(), 1);
}

TEST(Plc, KneeCurveNeedsTwoSegments) {
  // A perfect elbow: one segment has error, two are exact.
  std::vector<CurvePoint> pts;
  for (int i = 0; i <= 10; ++i) {
    const double x = i / 10.0;
    pts.push_back({x, x <= 0.5 ? 0.0 : (x - 0.5)});
  }
  const PwlCurve knee(std::move(pts));
  EXPECT_GT(plc_coarsen(knee, 1).mse, 1e-5);
  EXPECT_NEAR(plc_coarsen(knee, 2).mse, 0.0, 1e-15);
  // The 2-segment solution must place its breakpoint at the knee.
  const auto r2 = plc_coarsen(knee, 2);
  ASSERT_EQ(r2.curve.points().size(), 3u);
  EXPECT_NEAR(r2.curve.points()[1].x, 0.5, 1e-12);
}

TEST(Plc, CoarseningAMonotoneCurveStaysMonotone) {
  // Vertices are a subset of the exact curve's, so monotonicity is
  // inherited — validate on real GHE output.
  const auto exact = sample_exact_curve(hebs::image::UsidId::kBaboon);
  ASSERT_TRUE(exact.is_monotonic());
  for (int m : {2, 4, 8}) {
    EXPECT_TRUE(plc_coarsen(exact, m).curve.is_monotonic());
  }
}

TEST(Plc, ApproximationErrorMatchesCurveDistance) {
  // The DP's reported mse must agree with an independent evaluation of
  // the squared error at the exact curve's breakpoints.
  const auto exact = sample_exact_curve(hebs::image::UsidId::kTrees);
  const PlcResult r = plc_coarsen(exact, 4);
  double acc = 0.0;
  for (const auto& p : exact.points()) {
    const double d = r.curve(p.x) - p.y;
    acc += d * d;
  }
  acc /= static_cast<double>(exact.points().size());
  EXPECT_NEAR(r.mse, acc, 1e-9);
}

TEST(Plc, ValidatesArguments) {
  const auto exact = sample_exact_curve();
  EXPECT_THROW((void)plc_coarsen(exact, 0), hebs::util::InvalidArgument);
}

TEST(Plc, QuadraticTimeIsFastEnoughForRealTime)
{
  // O(m n²) with n = 256, m = 8 must run in well under a frame time.
  const auto exact = sample_exact_curve(hebs::image::UsidId::kTestpat);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) {
    (void)plc_coarsen(exact, 8);
  }
  const auto elapsed = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count() / 10.0, 40.0) << "PLC too slow for 25 fps";
}

}  // namespace
}  // namespace hebs::core
