// Tests for local (tiled) histogram equalization — the §6 future-work
// extension.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "hebs/advanced/core.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/quality.h"
#include "hebs/advanced/util.h"

namespace hebs::core {
namespace {

using hebs::image::GrayImage;
using hebs::image::UsidId;

TEST(ClipHistogram, NoClipLimitIsIdentity) {
  const auto hist = hebs::histogram::Histogram::from_image(
      hebs::image::make_usid(UsidId::kLena, 64));
  EXPECT_EQ(clip_histogram(hist, 0.0), hist);
  EXPECT_EQ(clip_histogram(hist, -1.0), hist);
}

TEST(ClipHistogram, PreservesTotalMass) {
  const auto hist = hebs::histogram::Histogram::from_image(
      hebs::image::make_usid(UsidId::kSplash, 64));
  for (double limit : {1.0, 2.0, 4.0, 16.0}) {
    EXPECT_EQ(clip_histogram(hist, limit).total(), hist.total()) << limit;
  }
}

TEST(ClipHistogram, CapsSpikesAndRedistributes) {
  hebs::histogram::Histogram hist;
  hist.add(100, 2560);  // a huge spike: 10x the uniform mass per bin
  const auto clipped = clip_histogram(hist, 2.0);
  // Cap = 2 * total/256 = 20 + redistribution share.
  EXPECT_LT(clipped.count(100), 60u);
  EXPECT_GT(clipped.count(0), 0u);  // excess spread everywhere
  EXPECT_EQ(clipped.total(), hist.total());
}

// Regression: redistribution must never lift a bin back above the cap.
// A delta spike concentrates the whole mass in one bin; the uniform
// redistribution of the old implementation pushed the clipped bin (and
// its neighbours) past the documented invariant.
TEST(ClipHistogram, DeltaSpikeRespectsTheCapInvariant) {
  for (const double limit : {1.0, 1.5, 2.0, 8.0}) {
    hebs::histogram::Histogram hist;
    hist.add(137, 100000);  // everything in one bin
    const auto clipped = clip_histogram(hist, limit);
    const double uniform_mass =
        static_cast<double>(hist.total()) /
        hebs::histogram::Histogram::kBins;
    const auto cap =
        static_cast<std::uint64_t>(std::ceil(limit * uniform_mass));
    std::uint64_t max_count = 0;
    for (int i = 0; i < hebs::histogram::Histogram::kBins; ++i) {
      max_count = std::max(max_count, clipped.count(i));
    }
    EXPECT_LE(max_count, cap) << "limit " << limit;
    EXPECT_EQ(clipped.total(), hist.total()) << "limit " << limit;
  }
}

// The invariant also holds when several bins sit just under the cap and
// the equal share would overfill them (the spill must cascade to bins
// with headroom, not stop at one round).
TEST(ClipHistogram, CascadingSpillKeepsEveryBinAtOrBelowCap) {
  hebs::histogram::Histogram hist;
  hist.add(10, 50000);  // two spikes + a near-cap shelf
  hist.add(20, 50000);
  for (int i = 100; i < 140; ++i) hist.add(i, 700);
  const double limit = 2.0;
  const auto clipped = clip_histogram(hist, limit);
  const auto cap = static_cast<std::uint64_t>(std::ceil(
      limit * static_cast<double>(hist.total()) /
      hebs::histogram::Histogram::kBins));
  for (int i = 0; i < hebs::histogram::Histogram::kBins; ++i) {
    EXPECT_LE(clipped.count(i), cap) << "bin " << i;
  }
  EXPECT_EQ(clipped.total(), hist.total());
}

TEST(ClipHistogram, HighLimitLeavesHistogramUntouched) {
  const auto hist = hebs::histogram::Histogram::from_image(
      hebs::image::make_usid(UsidId::kBaboon, 64));
  // Baboon's histogram is nearly flat; a 16x cap clips nothing.
  EXPECT_EQ(clip_histogram(hist, 16.0), hist);
}

TEST(Lhe, OutputStaysInTargetRange) {
  const auto img = hebs::image::make_usid(UsidId::kPeppers, 64);
  const GheTarget target{10, 180};
  const auto out = lhe_apply(img, target);
  const auto mm = out.min_max();
  EXPECT_GE(mm.min, 10);
  EXPECT_LE(mm.max, 180);
}

TEST(Lhe, SingleTileMatchesGlobalGhe) {
  const auto img = hebs::image::make_usid(UsidId::kGirl, 64);
  const GheTarget target{0, 150};
  LheOptions opts;
  opts.tiles = 1;
  opts.clip_limit = 0.0;
  const auto local = lhe_apply(img, target, opts);
  const auto global = ghe_lut(
      hebs::histogram::Histogram::from_image(img), target).apply(img);
  // Same construction up to rounding.
  int max_diff = 0;
  for (std::size_t i = 0; i < local.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(int(local.pixels()[i]) -
                                 int(global.pixels()[i])));
  }
  EXPECT_LE(max_diff, 1);
}

TEST(Lhe, AdaptsToRegionalStatistics) {
  // Left half dark texture, right half bright texture: local HE must
  // boost the dark half's contrast more than global HE does.
  GrayImage img(64, 64);
  hebs::image::fill_fbm(img, 7, 8.0, 3, 0.05, 0.25);
  GrayImage right(32, 64);
  hebs::image::fill_fbm(right, 8, 8.0, 3, 0.7, 0.95);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 32; ++x) img(x + 32, y) = right(x, y);
  }
  const GheTarget target{0, 255};
  LheOptions opts;
  opts.tiles = 2;
  opts.clip_limit = 0.0;
  const auto local = lhe_apply(img, target, opts);
  const auto global = ghe_lut(
      hebs::histogram::Histogram::from_image(img), target).apply(img);

  auto half_range = [](const GrayImage& im, int x0, int x1) {
    int lo = 255;
    int hi = 0;
    for (int y = 8; y < im.height() - 8; ++y) {
      for (int x = x0 + 8; x < x1 - 8; ++x) {
        lo = std::min(lo, int(im(x, y)));
        hi = std::max(hi, int(im(x, y)));
      }
    }
    return hi - lo;
  };
  EXPECT_GT(half_range(local, 0, 32), half_range(global, 0, 32));
}

TEST(Lhe, ClipLimitTamesNoiseAmplification) {
  // A nearly flat tile: unclipped LHE amplifies noise into full range;
  // the clip limit bounds the stretch.
  GrayImage img(64, 64, 128);
  hebs::util::Rng rng(3);
  hebs::image::add_gaussian_noise(img, 0.01, rng);
  const GheTarget target{0, 255};
  LheOptions unclipped;
  unclipped.tiles = 4;
  unclipped.clip_limit = 0.0;
  LheOptions clipped;
  clipped.tiles = 4;
  clipped.clip_limit = 2.0;
  const int range_unclipped =
      lhe_apply(img, target, unclipped).dynamic_range();
  const int range_clipped = lhe_apply(img, target, clipped).dynamic_range();
  EXPECT_LT(range_clipped, range_unclipped);
}

TEST(Lhe, InterpolationAvoidsTileSeams) {
  const auto img = hebs::image::make_usid(UsidId::kElaine, 64);
  LheOptions opts;
  opts.tiles = 4;
  const auto out = lhe_apply(img, GheTarget{0, 200}, opts);
  // Measure the maximum column-to-column mean jump at tile borders; it
  // must be comparable to the interior (no visible seams).
  auto column_mean = [&out](int x) {
    double acc = 0.0;
    for (int y = 0; y < out.height(); ++y) acc += out(x, y);
    return acc / out.height();
  };
  const int border = 32;  // between tiles 1 and 2 of 4 on a 64px image
  const double border_jump =
      std::abs(column_mean(border) - column_mean(border - 1));
  double interior_max = 0.0;
  for (int x = 8; x < 24; ++x) {
    interior_max = std::max(
        interior_max, std::abs(column_mean(x + 1) - column_mean(x)));
  }
  EXPECT_LT(border_jump, interior_max * 3.0 + 8.0);
}

// Degenerate tiling: tiles == width makes every tile exactly one pixel
// column wide (tile_w == 1, the truncation path's edge), which must
// neither crash nor index outside the tile grid, and the output must
// stay inside the target range.
TEST(Lhe, OnePixelTilesAtTilesEqualsWidth) {
  const int size = 24;
  const auto img = hebs::image::make_usid(UsidId::kPout, size);
  const GheTarget target{5, 200};
  LheOptions opts;
  opts.tiles = size;  // tile_w == tile_h == 1.0 exactly
  const auto out = lhe_apply(img, target, opts);
  ASSERT_EQ(out.width(), size);
  ASSERT_EQ(out.height(), size);
  const auto mm = out.min_max();
  EXPECT_GE(mm.min, 5);
  EXPECT_LE(mm.max, 200);
}

// The per-tile LUT rewrite must be exactly the old per-pixel curve
// evaluation: a curve is only ever sampled at the 256 quantized
// levels, so tabulating it first is the same arithmetic.  Pin the
// equivalence by evaluating the tile curves directly on a small image.
TEST(Lhe, TileLutsMatchDirectCurveEvaluation) {
  const auto img = hebs::image::make_usid(UsidId::kElaine, 32);
  const GheTarget target{0, 220};
  LheOptions opts;
  opts.tiles = 2;
  opts.clip_limit = 3.0;
  const auto out = lhe_apply(img, target, opts);
  // Reference: per-pixel curve evaluation, the pre-rewrite inner loop.
  const int tiles = opts.tiles;
  const double tile_w = static_cast<double>(img.width()) / tiles;
  const double tile_h = static_cast<double>(img.height()) / tiles;
  std::vector<hebs::transform::PwlCurve> curves;
  for (int ty = 0; ty < tiles; ++ty) {
    for (int tx = 0; tx < tiles; ++tx) {
      const int x0 = static_cast<int>(tx * tile_w);
      const int y0 = static_cast<int>(ty * tile_h);
      const int x1 = tx + 1 == tiles ? img.width()
                                     : static_cast<int>((tx + 1) * tile_w);
      const int y1 = ty + 1 == tiles ? img.height()
                                     : static_cast<int>((ty + 1) * tile_h);
      hebs::histogram::Histogram hist;
      for (int y = y0; y < y1; ++y) {
        for (int x = x0; x < x1; ++x) hist.add(img(x, y));
      }
      curves.push_back(
          ghe_transform(clip_histogram(hist, opts.clip_limit), target));
    }
  }
  auto curve_at = [&](int tx, int ty) -> const hebs::transform::PwlCurve& {
    tx = std::clamp(tx, 0, tiles - 1);
    ty = std::clamp(ty, 0, tiles - 1);
    return curves[static_cast<std::size_t>(ty) * tiles + tx];
  };
  for (int y = 0; y < img.height(); ++y) {
    const double fy = (y + 0.5) / tile_h - 0.5;
    const int ty0 = static_cast<int>(std::floor(fy));
    const double wy = fy - std::floor(fy);
    for (int x = 0; x < img.width(); ++x) {
      const double fx = (x + 0.5) / tile_w - 0.5;
      const int tx0 = static_cast<int>(std::floor(fx));
      const double wx = fx - std::floor(fx);
      const double xn = static_cast<double>(img(x, y)) / 255.0;
      const double v0 = hebs::util::lerp(curve_at(tx0, ty0)(xn),
                                         curve_at(tx0 + 1, ty0)(xn), wx);
      const double v1 = hebs::util::lerp(curve_at(tx0, ty0 + 1)(xn),
                                         curve_at(tx0 + 1, ty0 + 1)(xn), wx);
      const auto want = static_cast<std::uint8_t>(std::lround(
          hebs::util::clamp01(hebs::util::lerp(v0, v1, wy)) * 255.0));
      ASSERT_EQ(out(x, y), want) << "(" << x << ", " << y << ")";
    }
  }
}

TEST(Lhe, ValidatesArguments) {
  const auto img = hebs::image::make_usid(UsidId::kLena, 32);
  LheOptions bad;
  bad.tiles = 0;
  EXPECT_THROW((void)lhe_apply(img, GheTarget{0, 100}, bad),
               hebs::util::InvalidArgument);
  GrayImage empty;
  EXPECT_THROW((void)lhe_apply(empty, GheTarget{0, 100}),
               hebs::util::InvalidArgument);
  LheOptions too_many;
  too_many.tiles = 64;
  const GrayImage tiny(8, 8, 0);
  EXPECT_THROW((void)lhe_apply(tiny, GheTarget{0, 100}, too_many),
               hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::core
