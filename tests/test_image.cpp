// Unit tests for hebs::image — image types and conversions.
#include <gtest/gtest.h>

#include "hebs/advanced/image.h"
#include "hebs/advanced/util.h"

namespace hebs::image {
namespace {

TEST(GrayImage, ConstructsWithFill) {
  GrayImage img(4, 3, 7);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.size(), 12u);
  for (std::uint8_t p : img.pixels()) EXPECT_EQ(p, 7);
}

TEST(GrayImage, DefaultIsEmpty) {
  GrayImage img;
  EXPECT_TRUE(img.empty());
  EXPECT_EQ(img.size(), 0u);
  EXPECT_EQ(img.dynamic_range(), 0);
}

TEST(GrayImage, RejectsNonPositiveDimensions) {
  EXPECT_THROW(GrayImage(0, 5), util::InvalidArgument);
  EXPECT_THROW(GrayImage(5, -1), util::InvalidArgument);
}

TEST(GrayImage, PixelAccessRowMajor) {
  GrayImage img(3, 2);
  img(2, 1) = 42;
  EXPECT_EQ(img.pixels()[5], 42);
  EXPECT_EQ(img(2, 1), 42);
}

TEST(GrayImage, BoundsCheckedAccessThrows) {
  GrayImage img(3, 3);
  EXPECT_THROW((void)img.at(3, 0), util::InvalidArgument);
  EXPECT_THROW((void)img.at(0, -1), util::InvalidArgument);
  EXPECT_THROW(img.set(0, 3, 1), util::InvalidArgument);
  EXPECT_NO_THROW(img.set(2, 2, 9));
  EXPECT_EQ(img.at(2, 2), 9);
}

TEST(GrayImage, ContainsMatchesBounds) {
  GrayImage img(2, 2);
  EXPECT_TRUE(img.contains(0, 0));
  EXPECT_TRUE(img.contains(1, 1));
  EXPECT_FALSE(img.contains(2, 0));
  EXPECT_FALSE(img.contains(-1, 0));
}

TEST(GrayImage, MeanMinMaxDynamicRange) {
  GrayImage img(2, 2);
  img(0, 0) = 10;
  img(1, 0) = 20;
  img(0, 1) = 30;
  img(1, 1) = 40;
  EXPECT_DOUBLE_EQ(img.mean(), 25.0);
  EXPECT_EQ(img.min_max().min, 10);
  EXPECT_EQ(img.min_max().max, 40);
  EXPECT_EQ(img.dynamic_range(), 30);
}

TEST(GrayImage, FillOverwritesEverything) {
  GrayImage img(3, 3, 1);
  img.fill(200);
  EXPECT_EQ(img.min_max().min, 200);
  EXPECT_EQ(img.min_max().max, 200);
}

TEST(GrayImage, EqualityIsValueBased) {
  GrayImage a(2, 2, 5);
  GrayImage b(2, 2, 5);
  EXPECT_EQ(a, b);
  b(0, 0) = 6;
  EXPECT_NE(a, b);
}

TEST(FloatImage, FromGrayNormalizes) {
  GrayImage g(1, 2);
  g(0, 0) = 0;
  g(0, 1) = 255;
  const FloatImage f = FloatImage::from_gray(g);
  EXPECT_DOUBLE_EQ(f(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(f(0, 1), 1.0);
}

TEST(FloatImage, ToGrayQuantizesAndClamps) {
  FloatImage f(1, 3);
  f(0, 0) = -0.5;
  f(0, 1) = 0.5;
  f(0, 2) = 1.7;
  const GrayImage g = f.to_gray();
  EXPECT_EQ(g(0, 0), 0);
  EXPECT_EQ(g(0, 1), 128);  // round(0.5*255) = 128
  EXPECT_EQ(g(0, 2), 255);
}

TEST(FloatImage, GrayRoundTripIsExact) {
  GrayImage g(16, 16);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      g(x, y) = static_cast<std::uint8_t>(y * 16 + x);
    }
  }
  EXPECT_EQ(FloatImage::from_gray(g).to_gray(), g);
}

TEST(FloatImage, MeanMatchesValues) {
  FloatImage f(2, 1);
  f(0, 0) = 0.2;
  f(1, 0) = 0.4;
  EXPECT_NEAR(f.mean(), 0.3, 1e-12);
}

TEST(RgbImage, SetGetRoundTrip) {
  RgbImage img(2, 2);
  img.set(1, 1, {10, 20, 30});
  const auto p = img.get(1, 1);
  EXPECT_EQ(p.r, 10);
  EXPECT_EQ(p.g, 20);
  EXPECT_EQ(p.b, 30);
}

TEST(RgbImage, LumaUsesBt601Weights) {
  RgbImage img(1, 1);
  img.set(0, 0, {255, 0, 0});
  EXPECT_EQ(img.to_luma()(0, 0), 76);  // round(0.299*255)
  img.set(0, 0, {0, 255, 0});
  EXPECT_EQ(img.to_luma()(0, 0), 150);  // round(0.587*255)
  img.set(0, 0, {0, 0, 255});
  EXPECT_EQ(img.to_luma()(0, 0), 29);  // round(0.114*255)
}

TEST(RgbImage, FromGrayReplicatesChannels) {
  GrayImage g(2, 1);
  g(0, 0) = 100;
  g(1, 0) = 200;
  const RgbImage rgb = RgbImage::from_gray(g);
  EXPECT_EQ(rgb.get(0, 0), (RgbImage::Pixel{100, 100, 100}));
  EXPECT_EQ(rgb.get(1, 0), (RgbImage::Pixel{200, 200, 200}));
}

TEST(RgbImage, GrayLumaRoundTrip) {
  GrayImage g(3, 3, 77);
  EXPECT_EQ(RgbImage::from_gray(g).to_luma(), g);
}

}  // namespace
}  // namespace hebs::image
