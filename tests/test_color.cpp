// Tests for color backlight scaling (§2's color LCD path).
#include <gtest/gtest.h>

#include "hebs/advanced/core.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/util.h"

namespace hebs::core {
namespace {

using hebs::image::RgbImage;
using hebs::image::UsidId;

const hebs::power::LcdSubsystemPower& model() {
  static const auto m = hebs::power::LcdSubsystemPower::lp064v1();
  return m;
}

TEST(ColorSynthetic, ColorImageIsDeterministic) {
  const RgbImage a = hebs::image::make_usid_color(UsidId::kPeppers, 64);
  const RgbImage b = hebs::image::make_usid_color(UsidId::kPeppers, 64);
  EXPECT_TRUE(std::equal(a.data().begin(), a.data().end(),
                         b.data().begin()));
}

TEST(ColorSynthetic, LumaStaysCloseToGrayscaleOriginal) {
  const auto gray = hebs::image::make_usid(UsidId::kLena, 64);
  const auto color = hebs::image::make_usid_color(UsidId::kLena, 64);
  const auto luma = color.to_luma();
  double mean_abs = 0.0;
  for (std::size_t i = 0; i < gray.size(); ++i) {
    mean_abs += std::abs(static_cast<double>(gray.pixels()[i]) -
                         static_cast<double>(luma.pixels()[i]));
  }
  mean_abs /= static_cast<double>(gray.size());
  EXPECT_LT(mean_abs, 12.0);  // green-channel clamping causes small drift
}

TEST(ColorSynthetic, HasActualChroma) {
  const auto color = hebs::image::make_usid_color(UsidId::kSail, 64);
  int chromatic = 0;
  for (int y = 0; y < color.height(); ++y) {
    for (int x = 0; x < color.width(); ++x) {
      const auto p = color.get(x, y);
      if (std::abs(int(p.r) - int(p.b)) > 8) ++chromatic;
    }
  }
  EXPECT_GT(chromatic, 500);
}

TEST(ColorHebs, GrayInputReproducesGrayPipeline) {
  const auto gray = hebs::image::make_usid(UsidId::kGirl, 64);
  const auto rgb = RgbImage::from_gray(gray);
  const auto color_result = color_hebs_exact(rgb, 10.0, {}, model());
  const auto gray_result = hebs_exact(gray, 10.0, {}, model());
  EXPECT_NEAR(color_result.saving_percent,
              gray_result.evaluation.saving_percent, 1e-9);
  EXPECT_NEAR(color_result.distortion_percent,
              gray_result.evaluation.distortion_percent, 1e-9);
  // Channels stay equal: no hue was introduced.
  for (int y = 0; y < rgb.height(); y += 7) {
    for (int x = 0; x < rgb.width(); x += 7) {
      const auto p = color_result.transformed.get(x, y);
      EXPECT_EQ(p.r, p.g);
      EXPECT_EQ(p.g, p.b);
    }
  }
}

TEST(ColorHebs, MeetsTheLumaDistortionBudget) {
  const auto rgb = hebs::image::make_usid_color(UsidId::kPeppers, 64);
  const auto result = color_hebs_exact(rgb, 10.0, {}, model());
  EXPECT_LE(result.distortion_percent, 10.0 + 1e-9);
  EXPECT_GT(result.saving_percent, 10.0);
}

TEST(ColorHebs, HueErrorIsBounded) {
  const auto rgb = hebs::image::make_usid_color(UsidId::kAutumn, 64);
  const auto result = color_hebs_exact(rgb, 10.0, {}, model());
  // The shared monotone curve warps chroma, but must not scramble it:
  // mean chromaticity shift stays a small fraction of the gamut.
  EXPECT_LT(result.hue_error, 0.15);
}

TEST(ColorHebs, ApplyToColorUsesSharedCurve) {
  RgbImage img(1, 1);
  img.set(0, 0, {0, 128, 255});
  OperatingPoint point{
      hebs::transform::PwlCurve({{0.0, 0.0}, {1.0, 0.5}}), 0.5};
  const auto out = apply_to_color(img, point);
  const auto p = out.get(0, 0);
  EXPECT_EQ(p.r, 0);
  EXPECT_NEAR(p.g, 64, 1);   // 0.5·(128/255)·255
  EXPECT_NEAR(p.b, 128, 1);  // 0.5·255
}

TEST(ColorHebs, SharedCurveKernelPathMatchesPerByteLookup) {
  // The dispatched lut_apply_rgb8 application must equal the plain
  // per-byte lookup of the shared quantized curve.
  const auto rgb = hebs::image::make_usid_color(UsidId::kSail, 40);
  OperatingPoint point{
      hebs::transform::PwlCurve({{0.0, 0.05}, {0.6, 0.5}, {1.0, 0.8}}), 0.8};
  const auto out = apply_to_color(rgb, point, ColorMode::kSharedCurve);
  const hebs::transform::Lut lut = displayed_levels(point).quantize();
  const auto src = rgb.data();
  const auto got = out.data();
  ASSERT_EQ(got.size(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(got[i], lut[src[i]]) << "byte " << i;
  }
}

TEST(ColorHebs, LumaRatioPreservesChromaBetterThanSharedCurve) {
  const auto rgb = hebs::image::make_usid_color(UsidId::kAutumn, 64);
  const auto shared =
      color_hebs_exact(rgb, 10.0, {}, model(), ColorMode::kSharedCurve);
  const auto ratio =
      color_hebs_exact(rgb, 10.0, {}, model(), ColorMode::kLumaRatio);
  // Same decision (both run on luma), different raster application.
  EXPECT_EQ(shared.luma.point.beta, ratio.luma.point.beta);
  EXPECT_EQ(shared.distortion_percent, ratio.distortion_percent);
  EXPECT_LT(ratio.hue_error, shared.hue_error);
  EXPECT_LT(ratio.hue_error, 0.05);
}

TEST(ColorHebs, LumaRatioScalesChannelsByACommonFactor) {
  RgbImage img(1, 1);
  img.set(0, 0, {120, 60, 30});  // 4:2:1 ratios, luma well inside range
  OperatingPoint point{
      hebs::transform::PwlCurve({{0.0, 0.0}, {1.0, 0.5}}), 0.5};
  const auto out = apply_to_color(img, point, ColorMode::kLumaRatio);
  const auto p = out.get(0, 0);
  // The common scale preserves the 4:2:1 structure up to rounding.
  EXPECT_NEAR(static_cast<double>(p.r) / p.b, 4.0, 0.2);
  EXPECT_NEAR(static_cast<double>(p.g) / p.b, 2.0, 0.2);
}

TEST(ColorHebs, LumaRatioSaturatingChannelClampsAt255) {
  RgbImage img(1, 1);
  img.set(0, 0, {200, 10, 10});  // red-dominant: scaling drives R past 255
  // A brightening curve: ψ(y) > y/255 everywhere, so the common scale
  // exceeds 1 and the dominant channel saturates.
  OperatingPoint point{
      hebs::transform::PwlCurve({{0.0, 0.5}, {1.0, 1.0}}), 1.0};
  const auto out = apply_to_color(img, point, ColorMode::kLumaRatio);
  const auto p = out.get(0, 0);
  EXPECT_EQ(p.r, 255);  // clamped, not wrapped
  EXPECT_GT(p.g, 10);   // the others still brightened
  EXPECT_LT(p.g, 255);
}

TEST(ColorHebs, LumaRatioRespectsTheBacklightCeiling) {
  // Transmittance cannot exceed one: no sub-pixel can display brighter
  // than β, whatever ratio scaling asks for.  Both modes share the
  // ceiling lround(β·255).
  RgbImage img(1, 1);
  img.set(0, 0, {255, 20, 20});
  OperatingPoint point{
      hebs::transform::PwlCurve({{0.0, 0.5}, {1.0, 1.0}}), 0.5};
  const auto ratio = apply_to_color(img, point, ColorMode::kLumaRatio);
  const auto shared = apply_to_color(img, point, ColorMode::kSharedCurve);
  const int ceiling = 128;  // lround(0.5 * 255)
  EXPECT_LE(ratio.get(0, 0).r, ceiling);
  EXPECT_LE(shared.get(0, 0).r, ceiling);
  EXPECT_EQ(ratio.get(0, 0).r, ceiling);  // the scale does hit the rail
}

TEST(ColorHebs, LumaRatioZeroLumaFallsBackToSharedCurve) {
  RgbImage img(1, 2);
  img.set(0, 0, {1, 0, 0});  // BT.601 luma rounds to 0: no ratio exists
  img.set(0, 1, {0, 0, 0});
  OperatingPoint point{
      hebs::transform::PwlCurve({{0.0, 0.1}, {1.0, 0.9}}), 0.9};
  const auto out = apply_to_color(img, point, ColorMode::kLumaRatio);
  const hebs::transform::Lut lut = displayed_levels(point).quantize();
  EXPECT_EQ(out.get(0, 0).r, lut[1]);
  EXPECT_EQ(out.get(0, 0).g, lut[0]);
  EXPECT_EQ(out.get(0, 1).r, lut[0]);
}

TEST(ColorHebs, ChromaticityErrorOfAllBlackImagesIsZero) {
  // Every pixel takes the sum < 1 skip path; the counted == 0 fallback
  // must report 0, not divide by zero.
  const RgbImage black(16, 16);
  EXPECT_DOUBLE_EQ(chromaticity_error(black, black), 0.0);
  RgbImage dim(16, 16);
  EXPECT_DOUBLE_EQ(chromaticity_error(black, dim), 0.0);
}

TEST(ColorHebs, ChromaticityErrorOfIdenticalImagesIsZero) {
  const auto rgb = hebs::image::make_usid_color(UsidId::kOnion, 48);
  EXPECT_DOUBLE_EQ(chromaticity_error(rgb, rgb), 0.0);
}

TEST(ColorHebs, ChromaticityErrorDetectsChannelSwap) {
  const auto rgb = hebs::image::make_usid_color(UsidId::kAutumn, 48);
  RgbImage swapped(rgb.width(), rgb.height());
  for (int y = 0; y < rgb.height(); ++y) {
    for (int x = 0; x < rgb.width(); ++x) {
      const auto p = rgb.get(x, y);
      swapped.set(x, y, {p.b, p.g, p.r});
    }
  }
  EXPECT_GT(chromaticity_error(rgb, swapped), 0.01);
}

TEST(ColorHebs, ValidatesArguments) {
  RgbImage empty;
  EXPECT_THROW((void)color_hebs_exact(empty, 10.0, {}, model()),
               hebs::util::InvalidArgument);
  const auto rgb = hebs::image::make_usid_color(UsidId::kLena, 32);
  OperatingPoint bad{hebs::transform::PwlCurve::identity(), 0.0};
  EXPECT_THROW((void)apply_to_color(rgb, bad),
               hebs::util::InvalidArgument);
}

}  // namespace
}  // namespace hebs::core
