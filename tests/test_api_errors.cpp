// Error-path tests for the stable facade: Status/Expected semantics,
// per-field SessionConfig validation, request validation, registry
// lookups, and the tightened core option checks behind them.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "hebs/advanced/core.h"
#include "hebs/hebs.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/util.h"

namespace {

using hebs::ImageView;
using hebs::Session;
using hebs::SessionConfig;
using hebs::Status;
using hebs::StatusCode;

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s(StatusCode::kInvalidStride, "stride 3 too small");
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(static_cast<bool>(s));
  EXPECT_EQ(s.to_string(), "invalid-stride: stride 3 too small");
}

TEST(Status, EveryCodeHasAName) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidOption, StatusCode::kInvalidImage,
        StatusCode::kInvalidStride, StatusCode::kInvalidBudget,
        StatusCode::kUnknownPolicy, StatusCode::kUnknownMetric,
        StatusCode::kUnknownDepth, StatusCode::kIoError,
        StatusCode::kInternal}) {
    EXPECT_STRNE(hebs::status_code_name(code), "unknown");
  }
}

TEST(Expected, HoldsValueOrStatus) {
  hebs::Expected<int> ok(42);
  EXPECT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, 42);
  EXPECT_TRUE(ok.status().ok());
  EXPECT_EQ(ok.value_or(-1), 42);

  hebs::Expected<int> bad(Status(StatusCode::kInternal, "boom"));
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.status().code(), StatusCode::kInternal);
  EXPECT_EQ(bad.value_or(-1), -1);
  EXPECT_THROW((void)bad.value(), std::logic_error);
}

TEST(Expected, RejectsOkStatus) {
  EXPECT_THROW(hebs::Expected<int>{Status{}}, std::logic_error);
}

// ------------------------------------------------ per-field validation

void expect_invalid_option(const SessionConfig& config) {
  const Status s = config.validate();
  EXPECT_EQ(s.code(), StatusCode::kInvalidOption) << s.to_string();
}

TEST(SessionConfigValidate, DefaultsAreValid) {
  EXPECT_TRUE(SessionConfig().validate().ok());
}

TEST(SessionConfigValidate, RejectsSegmentsBelowOne) {
  expect_invalid_option(SessionConfig().segments(0));
  expect_invalid_option(SessionConfig().segments(-3));
}

TEST(SessionConfigValidate, RejectsGMinFloorOutsideDomain) {
  expect_invalid_option(SessionConfig().g_min_floor(-1));
  expect_invalid_option(SessionConfig().g_min_floor(255));
}

TEST(SessionConfigValidate, RejectsMinRangeBelowTwo) {
  expect_invalid_option(SessionConfig().min_range(1));
  expect_invalid_option(SessionConfig().min_range(0));
  expect_invalid_option(SessionConfig().min_range(300));
}

TEST(SessionConfigValidate, RejectsMinBetaOutsideUnitInterval) {
  expect_invalid_option(SessionConfig().min_beta(0.0));
  expect_invalid_option(SessionConfig().min_beta(-0.1));
  expect_invalid_option(SessionConfig().min_beta(1.5));
}

TEST(SessionConfigValidate, RejectsEqualizationStrengthAboveOne) {
  expect_invalid_option(SessionConfig().equalization_strength(1.01));
  // Negative means adaptive and is valid.
  EXPECT_TRUE(SessionConfig().equalization_strength(-1.0).validate().ok());
}

TEST(SessionConfigValidate, RejectsNegativeThreads) {
  expect_invalid_option(SessionConfig().threads(-1));
}

TEST(SessionConfigValidate, RejectsVideoKnobsOutsideDomain) {
  expect_invalid_option(SessionConfig().max_beta_step(0.0));
  expect_invalid_option(SessionConfig().ema_alpha(0.0));
  expect_invalid_option(SessionConfig().scene_cut_threshold(2.5));
  expect_invalid_option(SessionConfig().characterization_size(8));
}

// The same domains are enforced (as throws) at the internal layer, so
// code bypassing the facade cannot reach the degenerate DP either.
TEST(CoreOptionValidation, RejectedFieldsThrowInternally) {
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kLena, 32);
  const auto model = hebs::power::LcdSubsystemPower::lp064v1();

  hebs::core::HebsOptions bad_segments;
  bad_segments.segments = 0;
  EXPECT_THROW((void)hebs::core::hebs_at_range(img, 100, bad_segments, model),
               hebs::util::InvalidArgument);

  hebs::core::HebsOptions bad_min_range;
  bad_min_range.min_range = 1;
  EXPECT_THROW((void)hebs::core::hebs_at_range(img, 100, bad_min_range, model),
               hebs::util::InvalidArgument);

  hebs::core::HebsOptions bad_min_beta;
  bad_min_beta.min_beta = 0.0;
  EXPECT_THROW((void)hebs::core::hebs_at_range(img, 100, bad_min_beta, model),
               hebs::util::InvalidArgument);
}

// ------------------------------------------------- request validation

hebs::Session make_session(SessionConfig config = {}) {
  auto session = Session::create(std::move(config));
  EXPECT_TRUE(session.has_value()) << session.status().to_string();
  return std::move(session).value();
}

TEST(SessionErrors, EmptyViewIsInvalidImage) {
  auto session = make_session();
  auto result = session.process({ImageView(), 10.0});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidImage);
}

TEST(SessionErrors, BadStrideIsInvalidStride) {
  std::vector<std::uint8_t> pixels(64, 0);
  auto session = make_session();
  auto result =
      session.process({ImageView::gray8(pixels.data(), 8, 8, 5), 10.0});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidStride);
}

TEST(SessionErrors, OutOfRangeBudgetIsInvalidBudget) {
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kLena, 32);
  const ImageView view =
      ImageView::gray8(img.pixels().data(), img.width(), img.height());
  auto session = make_session();
  EXPECT_EQ(session.process({view, -1.0}).status().code(),
            StatusCode::kInvalidBudget);
  EXPECT_EQ(session.process({view, 150.0}).status().code(),
            StatusCode::kInvalidBudget);
  EXPECT_EQ(session.process_batch({view}, -0.5).status().code(),
            StatusCode::kInvalidBudget);
  EXPECT_EQ(session.process_video({view}, 101.0).status().code(),
            StatusCode::kInvalidBudget);
}

TEST(SessionErrors, FixedRangeOutsideDomainIsInvalidOption) {
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kLena, 32);
  const ImageView view =
      ImageView::gray8(img.pixels().data(), img.width(), img.height());
  auto session = make_session();
  EXPECT_EQ(session.process({view, 10.0, 300}).status().code(),
            StatusCode::kInvalidOption);
  EXPECT_EQ(session.process({view, 10.0, -2}).status().code(),
            StatusCode::kInvalidOption);
  // The same floor min_range enforces: a one-level range is rejected.
  EXPECT_EQ(session.process({view, 10.0, 1}).status().code(),
            StatusCode::kInvalidOption);
}

TEST(SessionErrors, FixedRangeRejectedForBaselinePolicies) {
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kLena, 32);
  const ImageView view =
      ImageView::gray8(img.pixels().data(), img.width(), img.height());
  auto session = make_session(SessionConfig().policy("cbcs"));
  EXPECT_EQ(session.process({view, 10.0, 128}).status().code(),
            StatusCode::kInvalidOption);
}

TEST(SessionErrors, VideoRequiresHebsExact) {
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kLena, 32);
  const ImageView view =
      ImageView::gray8(img.pixels().data(), img.width(), img.height());
  auto session = make_session(SessionConfig().policy("dls"));
  EXPECT_EQ(session.process_video({view}, 10.0).status().code(),
            StatusCode::kInvalidOption);
}

TEST(SessionErrors, BatchNamesTheOffendingFrame) {
  const auto img = hebs::image::make_usid(hebs::image::UsidId::kLena, 32);
  auto session = make_session();
  const std::vector<ImageView> frames = {
      ImageView::gray8(img.pixels().data(), img.width(), img.height()),
      ImageView()};
  auto result = session.process_batch(frames, 10.0);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidImage);
  EXPECT_NE(result.status().message().find("frame 1"), std::string::npos);
}

TEST(SessionErrors, MissingCurveFileIsIoError) {
  auto session = Session::create(SessionConfig()
                                     .policy("hebs-curve")
                                     .curve_path("/nonexistent/curve.csv"));
  EXPECT_EQ(session.status().code(), StatusCode::kIoError);
}

// ------------------------------------------------------- registries

TEST(Registries, CreateRejectsUnknownNames) {
  EXPECT_EQ(Session::create(SessionConfig().policy("mbbhe")).status().code(),
            StatusCode::kUnknownPolicy);
  EXPECT_EQ(Session::create(SessionConfig().metric("psnr")).status().code(),
            StatusCode::kUnknownMetric);
}

TEST(Registries, LaunchEntriesArePresent) {
  for (const char* name : {"hebs-exact", "hebs-curve", "dls", "cbcs", "bbhe"}) {
    EXPECT_TRUE(hebs::PolicyRegistry::contains(name)) << name;
  }
  for (const char* name : {"uiqi-hvs", "percent-mapped"}) {
    EXPECT_TRUE(hebs::MetricRegistry::contains(name)) << name;
  }
  EXPECT_FALSE(hebs::PolicyRegistry::contains("no-such-policy"));
  EXPECT_FALSE(hebs::MetricRegistry::contains("no-such-metric"));
}

TEST(Registries, NamesMatchEntriesAndHaveDescriptions) {
  const auto policy_names = hebs::PolicyRegistry::names();
  ASSERT_EQ(policy_names.size(), hebs::PolicyRegistry::entries().size());
  for (std::size_t i = 0; i < policy_names.size(); ++i) {
    EXPECT_EQ(policy_names[i], hebs::PolicyRegistry::entries()[i].name);
    EXPECT_FALSE(hebs::PolicyRegistry::entries()[i].description.empty());
  }
  const auto metric_names = hebs::MetricRegistry::names();
  ASSERT_EQ(metric_names.size(), hebs::MetricRegistry::entries().size());
  for (std::size_t i = 0; i < metric_names.size(); ++i) {
    EXPECT_EQ(metric_names[i], hebs::MetricRegistry::entries()[i].name);
    EXPECT_FALSE(hebs::MetricRegistry::entries()[i].description.empty());
  }
}

// Round-trip: every registered name must build a working session.
TEST(Registries, EveryRegisteredNameCreatesASession) {
  for (const auto& name : hebs::PolicyRegistry::names()) {
    auto session = Session::create(SessionConfig().policy(name));
    EXPECT_TRUE(session.has_value())
        << name << ": " << session.status().to_string();
  }
  for (const auto& name : hebs::MetricRegistry::names()) {
    auto session = Session::create(SessionConfig().metric(name));
    if (name == "hue-error") {
      // Report-only: listed so the color modes are comparable, but it
      // measures chroma of the RGB rendering, not luma distortion — it
      // cannot drive the decision loop.
      ASSERT_FALSE(session.has_value());
      EXPECT_EQ(session.status().code(), StatusCode::kInvalidOption);
      continue;
    }
    EXPECT_TRUE(session.has_value())
        << name << ": " << session.status().to_string();
  }
}

}  // namespace
