// Regenerates Figure 7: the distortion characteristic curve — per-image
// distortion versus target dynamic range for the whole benchmark album,
// with the "entire dataset" and "worst-case" fits.
//
// This is the offline characterization HEBS uses at runtime to turn a
// distortion budget into a minimum admissible dynamic range (§5.1c).
#include <cstdio>

#include "bench_common.h"
#include "hebs/advanced/core.h"

int main() {
  using namespace hebs;
  bench::print_header("Figure 7 — distortion vs. dynamic range",
                      "Iranli et al., DATE'05, Fig. 7 / §5.1c");

  const auto album = image::usid_album(bench::kImageSize);
  const auto ranges = core::DistortionCurve::default_ranges();
  std::vector<core::CharacterizationPoint> scatter;
  const auto curve = core::DistortionCurve::characterize(
      album, ranges, {}, bench::platform(), &scatter);

  // The scatter (the figure's dots).
  auto csv = bench::open_csv("fig7_scatter.csv");
  csv.write_row({"image", "range", "distortion_percent"});
  for (const auto& p : scatter) {
    csv.write_row({p.image_name, std::to_string(p.range),
                   util::CsvWriter::num(p.distortion_percent)});
  }

  // The fitted curves (the figure's lines).
  auto fit_csv = bench::open_csv("fig7_fits.csv");
  fit_csv.write_row({"range", "entire_dataset_fit", "worst_case_fit"});
  util::ConsoleTable table(
      {"range", "avg distortion %", "worst-case %", "min range for D<=avg"});
  for (int range : ranges) {
    table.add_row({std::to_string(range),
                   util::ConsoleTable::num(curve.average_distortion(range)),
                   util::ConsoleTable::num(curve.worst_distortion(range)),
                   std::to_string(curve.min_range_for(
                       curve.average_distortion(range)))});
    fit_csv.write_row({std::to_string(range),
                       util::CsvWriter::num(curve.average_distortion(range)),
                       util::CsvWriter::num(curve.worst_distortion(range))});
  }
  std::printf("%s", table.to_string().c_str());

  std::printf("\nBudget -> minimum admissible dynamic range (worst-case "
              "fit inversion):\n");
  for (double budget : {2.0, 5.0, 10.0, 20.0, 30.0}) {
    std::printf("  D_max = %4.1f%%  ->  R >= %d\n", budget,
                curve.min_range_for(budget));
  }
  std::printf("\nShape check: distortion decays monotonically with range\n"
              "and the worst-case fit dominates the dataset fit, as in\n"
              "the paper's figure (x: 50..250, y: 0..35%%).\n"
              "CSV: %s/fig7_scatter.csv, fig7_fits.csv\n",
              bench::results_dir().c_str());
  return 0;
}
