// Counting-allocator harness: proves the engine's per-worker steady
// state performs ZERO heap allocations per frame.
//
// Global operator new/delete are replaced with counting versions (this
// affects the whole binary, which is why this harness is its own
// executable).  The measured loop is exactly what one engine worker
// slot runs in stream mode: a recycling BufferPool installed as the
// thread's arena, one FrameContext rebound per frame, and the exact
// HEBS search — cold and through the TemporalReuse fast path.  After a
// warm-up pass over the clip (free lists fill, vector capacities reach
// their high-water marks), steady-state frames must allocate nothing:
// every raster, integral table, curve and memo node is recycled.
//
// Exit code 1 when any steady-state configuration allocates — this is
// deterministic (no timing), so CI gates on it.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "hebs/advanced/image.h"
#include "hebs/advanced/obs.h"
#include "hebs/advanced/pipeline.h"
#include "hebs/advanced/power.h"
#include "hebs/advanced/util.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

// Counting overrides: every allocation path funnels through these
// (including the pool's own heap misses, so a pool miss in steady state
// is counted — exactly what the harness must catch).
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires size to be a multiple of the alignment.
  const auto a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

constexpr double kBudget = 10.0;

/// Runs `loops` passes over the clip through one worker's steady-state
/// loop; returns allocations counted during the passes.
template <typename PerFrame>
std::uint64_t measure(const std::vector<hebs::image::GrayImage>& clip,
                      int loops, PerFrame&& per_frame) {
  const std::uint64_t before =
      g_allocations.load(std::memory_order_relaxed);
  for (int pass = 0; pass < loops; ++pass) {
    for (const auto& frame : clip) per_frame(frame);
  }
  return g_allocations.load(std::memory_order_relaxed) - before;
}

}  // namespace

int main(int argc, char** argv) {
  int frames = 24;
  int size = 96;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--frames=", 9) == 0) {
      frames = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--size=", 7) == 0) {
      size = std::atoi(arg + 7);
    } else {
      std::fprintf(stderr, "usage: %s [--frames=N] [--size=PX]\n", argv[0]);
      return 2;
    }
  }

  std::printf("=== Zero-allocation steady state (counting allocator) ===\n");
  std::printf("clip: %d slow-pan frames at %dx%d, D_max %.0f%%\n\n", frames,
              size, size, kBudget);
  const auto clip = hebs::image::make_video_clip(frames, size);
  const auto model = hebs::power::LcdSubsystemPower::lp064v1();
  const auto frames_per_pass = static_cast<std::uint64_t>(clip.size());

  bool ok = true;
  const auto report = [&](const char* config, std::uint64_t allocs,
                          std::uint64_t n_frames) {
    const double per_frame =
        static_cast<double>(allocs) / static_cast<double>(n_frames);
    const bool pass = allocs == 0;
    std::printf("  %-24s: %6llu allocations / %llu frames  (%.2f per "
                "frame)  %s\n",
                config, static_cast<unsigned long long>(allocs),
                static_cast<unsigned long long>(n_frames), per_frame,
                pass ? "OK" : "FAIL");
    ok = ok && pass;
  };

  {
    // Cold per-worker loop: rebind + run_exact, pool recycling only.
    hebs::util::BufferPool pool;
    hebs::util::PoolScope scope(&pool);
    hebs::pipeline::FrameContext ctx(hebs::core::HebsOptions{}, model);
    // Warm-up: two passes fill the free lists and capacity high-water
    // marks (bisection depth varies per frame, so one pass may not
    // visit every bucket the steady state needs).
    (void)measure(clip, 2, [&](const hebs::image::GrayImage& frame) {
      ctx.rebind(frame);
      (void)hebs::pipeline::run_exact(ctx, kBudget);
    });
    const auto allocs =
        measure(clip, 3, [&](const hebs::image::GrayImage& frame) {
          ctx.rebind(frame);
          (void)hebs::pipeline::run_exact(ctx, kBudget);
        });
    report("cold rebind+run_exact", allocs, 3 * frames_per_pass);
    const auto stats = pool.stats();
    std::printf("    pool: %zu hits, %zu misses, %.1f MiB retained\n",
                stats.hits, stats.misses,
                static_cast<double>(stats.retained_bytes) / (1024 * 1024));
  }

  {
    // Temporal fast-path loop (what a stream slot runs).
    hebs::util::BufferPool pool;
    hebs::util::PoolScope scope(&pool);
    hebs::pipeline::FrameContext ctx(hebs::core::HebsOptions{}, model);
    hebs::pipeline::TemporalReuse reuse;
    (void)measure(clip, 2, [&](const hebs::image::GrayImage& frame) {
      (void)reuse.process(ctx, frame, kBudget);
    });
    const auto allocs =
        measure(clip, 3, [&](const hebs::image::GrayImage& frame) {
          (void)reuse.process(ctx, frame, kBudget);
        });
    report("temporal fast path", allocs, 3 * frames_per_pass);
  }

  {
    // Deep-pixel cold loop: the depth-generalized path (N-bin
    // histograms, pool-backed 1024-entry scratch, u16 kernels) must hold
    // the same zero-alloc steady state.  The widened clip is built
    // outside the measured window.
    std::vector<hebs::image::GrayImage16> clip16;
    clip16.reserve(clip.size());
    for (const auto& frame : clip) {
      clip16.push_back(hebs::image::GrayImage16::widen(frame, 1024));
    }
    hebs::util::BufferPool pool;
    hebs::util::PoolScope scope(&pool);
    hebs::pipeline::FrameContext ctx(hebs::core::HebsOptions{}, model);
    const auto run16 = [&](int loops) {
      const std::uint64_t before =
          g_allocations.load(std::memory_order_relaxed);
      for (int pass = 0; pass < loops; ++pass) {
        for (const auto& frame : clip16) {
          ctx.rebind(frame);
          (void)hebs::pipeline::run_exact(ctx, kBudget);
        }
      }
      return g_allocations.load(std::memory_order_relaxed) - before;
    };
    (void)run16(2);
    report("deep 10-bit run_exact", run16(3), 3 * frames_per_pass);
  }

  {
    // BBHE (the depth-generic policy) on the same 10-bit clip.
    std::vector<hebs::image::GrayImage16> clip16;
    clip16.reserve(clip.size());
    for (const auto& frame : clip) {
      clip16.push_back(hebs::image::GrayImage16::widen(frame, 1024));
    }
    hebs::util::BufferPool pool;
    hebs::util::PoolScope scope(&pool);
    hebs::pipeline::FrameContext ctx(hebs::core::HebsOptions{}, model);
    const auto run16 = [&](int loops) {
      const std::uint64_t before =
          g_allocations.load(std::memory_order_relaxed);
      for (int pass = 0; pass < loops; ++pass) {
        for (const auto& frame : clip16) {
          ctx.rebind(frame);
          (void)hebs::pipeline::run_bbhe(ctx, kBudget);
        }
      }
      return g_allocations.load(std::memory_order_relaxed) - before;
    };
    (void)run16(2);
    report("deep 10-bit bbhe", run16(3), 3 * frames_per_pass);
  }

  {
    // The observability contract: counters are always on (every config
    // above already counts), and span tracing must not add allocations
    // either — rings are pre-sized by start_tracing (the one allocating
    // call, outside the measured window), and the record path only
    // stores into them.
    hebs::obs::start_tracing();
    hebs::util::BufferPool pool;
    hebs::util::PoolScope scope(&pool);
    hebs::pipeline::FrameContext ctx(hebs::core::HebsOptions{}, model);
    hebs::pipeline::TemporalReuse reuse;
    (void)measure(clip, 2, [&](const hebs::image::GrayImage& frame) {
      (void)reuse.process(ctx, frame, kBudget);
    });
    const auto allocs =
        measure(clip, 3, [&](const hebs::image::GrayImage& frame) {
          (void)reuse.process(ctx, frame, kBudget);
        });
    hebs::obs::stop_tracing();
    report("temporal + tracing on", allocs, 3 * frames_per_pass);
  }

  std::printf("\n%s\n", ok ? "steady state is allocation-free"
                           : "FAIL: steady state allocates");
  return ok ? 0 : 1;
}
