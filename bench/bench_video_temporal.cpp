// Stream-throughput benchmark for the temporal-coherence fast path and
// the recycling buffer pools (the zero-allocation steady state).
//
// Four synthetic clip archetypes cover the coherence spectrum video
// content actually exhibits:
//   static     — every frame byte-identical (UI, paused playback);
//   slow-drift — a static scene with a small moving sprite and a one-
//                level global dim every few frames (surveillance /
//                talking-head coherence: <2% of pixels change per
//                frame, the operating point drifts by a level or two);
//                this is the clip the ≥2x acceptance gate runs on;
//   pan-dim    — the aggressive panning/dimming clip of
//                image/synthetic.h (every pixel changes every frame,
//                the operating point jumps ±15 levels: warm starts
//                rarely verify, so this bounds the fast path's honesty
//                overhead);
//   scene-cut  — blocks of unrelated scenes (the adversarial case: the
//                warm starts must fail fast and fall back cold).
//
// A fifth case, static-color, runs a byte-identical RGB clip through
// the engine's color stream path (luma decisions + the post-decision
// color stage): the temporal fast path must engage for RGB exactly as
// for gray — the luma search reuses the unchanged-frame result and the
// color stage reuses the previous rendering — gated at >= 2x warm
// speedup alongside slow-drift.
//
// Each clip runs through the single-worker stream executor in three
// configurations — baseline (pools and temporal reuse off: the PR 3
// cold-start path), pool (pools only), temporal (pools + fast path) —
// and every configuration's decisions are checked bit-identical to the
// serial per-frame controller before any number is reported.
//
// Writes BENCH_video.json ({bench, config, ns_per_frame, mpix_per_s,
// backend}).  --min-warm-speedup gates the temporal-vs-baseline ratio
// on the slow-drift clip (the acceptance criterion is >= 2x).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hebs/advanced/core.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/kernels.h"
#include "hebs/advanced/obs.h"
#include "hebs/advanced/pipeline.h"

namespace {

using hebs::core::FrameDecision;
using hebs::core::VideoBacklightController;
using hebs::core::VideoOptions;
using hebs::image::GrayImage;

constexpr double kBudget = 10.0;

struct Clip {
  std::string name;
  std::vector<GrayImage> frames;
};

/// Slowly varying content: a static scene, a 6x6 sprite moving one
/// pixel per frame, and a one-gray-level global dim every six frames —
/// under 2% of pixels change on most frames, and the operating point
/// drifts by a level or two at each dim step.
std::vector<GrayImage> slow_drift_clip(int frames, int size) {
  const GrayImage base =
      hebs::image::make_usid(hebs::image::UsidId::kSail, size);
  std::vector<GrayImage> clip;
  clip.reserve(static_cast<std::size_t>(frames));
  int dim = 0;
  for (int f = 0; f < frames; ++f) {
    if (f > 0 && f % 6 == 0) ++dim;
    GrayImage frame = base;
    if (dim > 0) {
      for (auto& px : frame.pixels()) {
        px = static_cast<std::uint8_t>(px > dim ? px - dim : 0);
      }
    }
    const int sprite = 6;
    const int x0 = f % (size - sprite);
    for (int y = size / 4; y < size / 4 + sprite; ++y) {
      for (int x = x0; x < x0 + sprite; ++x) {
        frame(x, y) = 230;
      }
    }
    clip.push_back(std::move(frame));
  }
  return clip;
}

std::vector<Clip> make_clips(int frames, int size) {
  std::vector<Clip> clips;
  clips.push_back(
      {"static", std::vector<GrayImage>(
                     static_cast<std::size_t>(frames),
                     hebs::image::make_usid(hebs::image::UsidId::kPout,
                                            size))});
  clips.push_back({"slow-drift", slow_drift_clip(frames, size)});
  clips.push_back({"pan-dim", hebs::image::make_video_clip(frames, size)});
  std::vector<GrayImage> cuts;
  const hebs::image::UsidId scenes[] = {
      hebs::image::UsidId::kPout, hebs::image::UsidId::kBaboon,
      hebs::image::UsidId::kSplash, hebs::image::UsidId::kWest};
  int produced = 0;
  for (int block = 0; produced < frames; ++block) {
    const GrayImage scene =
        hebs::image::make_usid(scenes[block % 4], size);
    for (int i = 0; i < 6 && produced < frames; ++i, ++produced) {
      cuts.push_back(scene);
    }
  }
  clips.push_back({"scene-cut", std::move(cuts)});
  return clips;
}

VideoOptions config_options(bool pooled, bool temporal) {
  VideoOptions opts;
  opts.d_max_percent = kBudget;
  opts.num_threads = 1;  // per-stream throughput: one worker, one chain
  opts.use_buffer_pool = pooled;
  opts.temporal_reuse = temporal;
  return opts;
}

bool same_color_result(const hebs::pipeline::ColorStreamResult& a,
                       const hebs::pipeline::ColorStreamResult& b) {
  return a.decision.beta == b.decision.beta &&
         a.decision.raw_beta == b.decision.raw_beta &&
         a.color.hue_error == b.color.hue_error &&
         std::equal(a.color.displayed.data().begin(),
                    a.color.displayed.data().end(),
                    b.color.displayed.data().begin(),
                    b.color.displayed.data().end());
}

/// Static RGB clip through the engine's color stream path in one
/// configuration; returns elapsed seconds.
double run_color_once(const std::vector<hebs::image::RgbImage>& frames,
                      const VideoOptions& opts,
                      std::vector<hebs::pipeline::ColorStreamResult>* out) {
  hebs::pipeline::EngineOptions eopts;
  eopts.num_threads = 1;
  eopts.hebs = opts.hebs;
  eopts.use_buffer_pool = opts.use_buffer_pool;
  eopts.temporal_reuse = opts.temporal_reuse;
  hebs::pipeline::PipelineEngine engine(eopts, hebs::bench::platform());
  const auto t0 = std::chrono::steady_clock::now();
  auto results = engine.process_stream_color(
      frames, opts, hebs::core::ColorMode::kSharedCurve);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (out != nullptr) *out = std::move(results);
  return elapsed;
}

bool same_decision(const FrameDecision& a, const FrameDecision& b) {
  return a.raw_beta == b.raw_beta && a.beta == b.beta &&
         a.scene_cut == b.scene_cut && a.point.beta == b.point.beta &&
         a.point.luminance_transform.points() ==
             b.point.luminance_transform.points() &&
         a.evaluation.distortion_percent ==
             b.evaluation.distortion_percent &&
         a.evaluation.saving_percent == b.evaluation.saving_percent &&
         a.evaluation.transformed == b.evaluation.transformed;
}

double run_once(const Clip& clip, const VideoOptions& opts,
                std::vector<FrameDecision>* decisions_out) {
  VideoBacklightController controller(opts, hebs::bench::platform());
  const auto t0 = std::chrono::steady_clock::now();
  auto decisions = controller.process_clip(clip.frames);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (decisions_out != nullptr) *decisions_out = std::move(decisions);
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  int frames = 48;
  int size = 96;
  double min_warm_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--frames=", 9) == 0) {
      frames = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--size=", 7) == 0) {
      size = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--min-warm-speedup=", 19) == 0) {
      min_warm_speedup = std::atof(arg + 19);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--frames=N] [--size=PX] "
                   "[--min-warm-speedup=X]\n",
                   argv[0]);
      return 2;
    }
  }

  hebs::bench::print_header(
      "Video stream throughput: temporal coherence + buffer pools",
      "stream executor fast path (extension; paper targets real-time "
      "frame sequences)");
  const std::string backend = hebs::kernels::active().name;
  std::printf("clips: %d frames at %dx%d, D_max %.0f%%, 1 worker, "
              "kernel backend %s\n\n",
              frames, size, size, kBudget, backend.c_str());

  const auto clips = make_clips(frames, size);
  struct ModeSpec {
    const char* name;
    bool pooled;
    bool temporal;
  };
  const ModeSpec modes[] = {{"baseline", false, false},
                            {"pool", true, false},
                            {"temporal", true, true}};

  std::vector<hebs::bench::BenchRecord> records;
  double slow_pan_speedup = 0.0;
  bool identical = true;

  for (const Clip& clip : clips) {
    // Serial per-frame reference for the bit-identity check.
    VideoBacklightController serial(config_options(false, false),
                                    hebs::bench::platform());
    std::vector<FrameDecision> reference;
    reference.reserve(clip.frames.size());
    for (const auto& frame : clip.frames) {
      reference.push_back(serial.process(frame));
    }

    std::printf("--- %s ---\n", clip.name.c_str());
    double baseline_s = 0.0;
    for (const ModeSpec& mode : modes) {
      const VideoOptions opts = config_options(mode.pooled, mode.temporal);
      (void)run_once(clip, opts, nullptr);  // warm caches and pools
      std::vector<FrameDecision> decisions;
      const auto counters_before = hebs::obs::snapshot_counters();
      const double elapsed = run_once(clip, opts, &decisions);
      const auto delta =
          hebs::obs::snapshot_counters().delta_since(counters_before);

      std::size_t mismatches = 0;
      for (std::size_t i = 0; i < decisions.size(); ++i) {
        if (!same_decision(decisions[i], reference[i])) ++mismatches;
      }
      if (mismatches != 0) identical = false;

      const double per_frame_ms =
          1000.0 * elapsed / static_cast<double>(clip.frames.size());
      const double speedup = mode.pooled || mode.temporal
                                 ? baseline_s / elapsed
                                 : 1.0;
      if (!mode.pooled && !mode.temporal) baseline_s = elapsed;
      if (clip.name == "slow-drift" && mode.temporal) {
        slow_pan_speedup = speedup;
      }
      const double probes_per_frame =
          static_cast<double>(delta[hebs::obs::Counter::kRangeProbes]) /
          static_cast<double>(clip.frames.size());
      const auto ident = delta[hebs::obs::Counter::kTemporalByteIdentical];
      const auto refresh = delta[hebs::obs::Counter::kTemporalDeltaRefresh];
      const auto cold = delta[hebs::obs::Counter::kTemporalCold];
      std::printf("  %-9s: %7.2f ms/frame  (%.2fx vs baseline)  "
                  "%5.1f probes/frame  reuse i/d/c %llu/%llu/%llu  "
                  "bit-identical to serial: %s\n",
                  mode.name, per_frame_ms, speedup, probes_per_frame,
                  static_cast<unsigned long long>(ident),
                  static_cast<unsigned long long>(refresh),
                  static_cast<unsigned long long>(cold),
                  mismatches == 0 ? "yes" : "NO");
      records.push_back(
          {"video_temporal", clip.name + "/" + mode.name,
           elapsed / static_cast<double>(clip.frames.size()) * 1e9,
           static_cast<double>(clip.frames.size()) * size * size /
               elapsed / 1e6,
           backend, probes_per_frame, static_cast<double>(ident),
           static_cast<double>(refresh), static_cast<double>(cold)});
    }
    std::printf("\n");
  }

  // --- static-color: byte-identical RGB frames through the engine's
  // color stream path.  The cold baseline pays the full luma search
  // plus the per-pixel color rendering every frame; temporal mode must
  // reuse both (unchanged-frame luma reuse + color-stage rendering
  // reuse), with outputs identical across configurations.
  double color_speedup = 0.0;
  {
    std::vector<hebs::image::RgbImage> color_clip(
        static_cast<std::size_t>(frames),
        hebs::image::make_usid_color(hebs::image::UsidId::kPeppers, size));
    std::printf("--- static-color ---\n");
    std::vector<hebs::pipeline::ColorStreamResult> reference;
    (void)run_color_once(color_clip, config_options(false, false),
                         &reference);
    double baseline_s = 0.0;
    for (const ModeSpec& mode : modes) {
      const VideoOptions opts = config_options(mode.pooled, mode.temporal);
      (void)run_color_once(color_clip, opts, nullptr);  // warm caches
      std::vector<hebs::pipeline::ColorStreamResult> results;
      const auto counters_before = hebs::obs::snapshot_counters();
      const double elapsed = run_color_once(color_clip, opts, &results);
      const auto delta =
          hebs::obs::snapshot_counters().delta_since(counters_before);
      std::size_t mismatches = 0;
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (!same_color_result(results[i], reference[i])) ++mismatches;
      }
      if (mismatches != 0) identical = false;
      const double per_frame_ms =
          1000.0 * elapsed / static_cast<double>(color_clip.size());
      const double speedup =
          mode.pooled || mode.temporal ? baseline_s / elapsed : 1.0;
      if (!mode.pooled && !mode.temporal) baseline_s = elapsed;
      if (mode.temporal) color_speedup = speedup;
      std::printf("  %-9s: %7.2f ms/frame  (%.2fx vs baseline)  "
                  "bit-identical across configs: %s\n",
                  mode.name, per_frame_ms, speedup,
                  mismatches == 0 ? "yes" : "NO");
      records.push_back(
          {"video_temporal", std::string("static-color/") + mode.name,
           elapsed / static_cast<double>(color_clip.size()) * 1e9,
           static_cast<double>(color_clip.size()) * size * size / elapsed /
               1e6,
           backend,
           static_cast<double>(delta[hebs::obs::Counter::kRangeProbes]) /
               static_cast<double>(color_clip.size()),
           static_cast<double>(
               delta[hebs::obs::Counter::kTemporalByteIdentical]),
           static_cast<double>(
               delta[hebs::obs::Counter::kTemporalDeltaRefresh]),
           static_cast<double>(delta[hebs::obs::Counter::kTemporalCold])});
    }
    std::printf("\n");
  }

  hebs::bench::write_bench_json("BENCH_video.json", records);

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: stream decisions diverged from the serial "
                 "controller\n");
    return 1;
  }
  std::printf("slow-drift temporal speedup vs cold baseline: %.2fx\n",
              slow_pan_speedup);
  std::printf("static-color temporal speedup vs cold baseline: %.2fx\n",
              color_speedup);
  if (min_warm_speedup > 0.0 && slow_pan_speedup < min_warm_speedup) {
    std::fprintf(stderr, "FAIL: %.2fx < required %.2fx\n",
                 slow_pan_speedup, min_warm_speedup);
    return 1;
  }
  if (min_warm_speedup > 0.0 && color_speedup < min_warm_speedup) {
    std::fprintf(stderr, "FAIL: static-color %.2fx < required %.2fx\n",
                 color_speedup, min_warm_speedup);
    return 1;
  }
  return 0;
}
