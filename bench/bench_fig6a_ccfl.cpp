// Regenerates Figure 6a: CCFL illuminance (backlight factor) versus
// driver power for the LG Philips LP064V1 lamp.
//
// Full characterization flow: sweep a simulated lamp on the synthetic
// lab bench, fit the two-piece linear model of Eq. 11, and compare the
// recovered coefficients with the published ones
// (C_s=0.8234, A_lin=1.96, C_lin=-0.2372, A_sat=6.944, C_sat=-4.324).
#include <cstdio>

#include "bench_common.h"
#include "hebs/advanced/power.h"

int main() {
  using namespace hebs;
  bench::print_header("Figure 6a — CCFL power vs. backlight factor",
                      "Iranli et al., DATE'05, Fig. 6a / Eq. 11");

  // Step 1: measure the lamp on the bench.
  power::BenchOptions bench_opts;
  bench_opts.points = 40;
  bench_opts.noise_watts = 0.01;
  const auto samples = power::measure_ccfl(bench_opts, 0.3);

  // Step 2: fit Eq. 11.
  std::vector<double> betas;
  std::vector<double> watts;
  power::split_samples(samples, betas, watts);
  const auto fitted = power::CcflModel::fit(betas, watts);
  const auto model = power::CcflModel::lp064v1();

  // Step 3: report the curve (the figure's series) and the fits.
  auto csv = bench::open_csv("fig6a_ccfl.csv");
  csv.write_row({"beta", "measured_watts", "fitted_watts", "paper_watts"});
  util::ConsoleTable table({"beta", "measured W", "fitted W", "paper model W"});
  for (const auto& s : samples) {
    const auto beta_label = util::ConsoleTable::num(s.x, 3);
    table.add_row({beta_label, util::ConsoleTable::num(s.y, 3),
                   util::ConsoleTable::num(fitted.power(s.x), 3),
                   util::ConsoleTable::num(model.power(s.x), 3)});
    csv.write_row({util::CsvWriter::num(s.x), util::CsvWriter::num(s.y),
                   util::CsvWriter::num(fitted.power(s.x)),
                   util::CsvWriter::num(model.power(s.x))});
  }
  std::printf("%s", table.to_string().c_str());

  const auto& fc = fitted.coefficients();
  const auto& pc = model.coefficients();
  std::printf("\nRecovered vs published coefficients (Eq. 11):\n");
  std::printf("  C_s   : %8.4f (paper %8.4f)\n", fc.c_s, pc.c_s);
  std::printf("  A_lin : %8.4f (paper %8.4f)\n", fc.a_lin, pc.a_lin);
  std::printf("  C_lin : %8.4f (paper %8.4f)\n", fc.c_lin, pc.c_lin);
  std::printf("  A_sat : %8.4f (paper %8.4f)\n", fc.a_sat, pc.a_sat);
  std::printf("  C_sat : %8.4f (paper %8.4f)\n", fc.c_sat, pc.c_sat);
  std::printf("\nShape check: monotone increase with a sharp efficiency\n"
              "knee near beta = 0.82 (saturation region).\n"
              "CSV: %s/fig6a_ccfl.csv\n",
              bench::results_dir().c_str());
  return 0;
}
