// Microbenchmarks of every pipeline stage (google-benchmark).
//
// Supports the paper's hardware-efficiency claims (§1 advantage 3,
// Fig. 4): histogram extraction, the GHE solve, the O(m n²) PLC dynamic
// program, ladder programming (Eq. 10) and LUT application must all fit
// comfortably inside a frame time; the perceptual metric is the one
// stage that does not — which is exactly why HEBS precharacterizes the
// distortion curve offline.
#include <benchmark/benchmark.h>

#include "core/distortion_curve.h"
#include "core/ghe.h"
#include "core/hebs.h"
#include "core/plc.h"
#include "display/reference_driver.h"
#include "image/synthetic.h"
#include "quality/distortion.h"

namespace {

using namespace hebs;

const image::GrayImage& test_image() {
  static const auto img = image::make_usid(image::UsidId::kLena, 256);
  return img;
}

const power::LcdSubsystemPower& platform() {
  static const auto model = power::LcdSubsystemPower::lp064v1();
  return model;
}

void BM_HistogramFromImage(benchmark::State& state) {
  const auto& img = test_image();
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram::Histogram::from_image(img));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(img.size()));
}
BENCHMARK(BM_HistogramFromImage);

void BM_GheSolve(benchmark::State& state) {
  const auto hist = histogram::Histogram::from_image(test_image());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ghe_transform(hist, core::GheTarget{0, 150}));
  }
}
BENCHMARK(BM_GheSolve);

void BM_PlcCoarsen(benchmark::State& state) {
  const auto hist = histogram::Histogram::from_image(test_image());
  const auto phi = core::ghe_transform(hist, core::GheTarget{0, 150});
  const int segments = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::plc_coarsen(phi, segments));
  }
}
BENCHMARK(BM_PlcCoarsen)->Arg(2)->Arg(8)->Arg(32);

void BM_LadderProgram(benchmark::State& state) {
  const auto hist = histogram::Histogram::from_image(test_image());
  const auto phi = core::ghe_transform(hist, core::GheTarget{0, 150});
  const auto lambda = core::plc_coarsen(phi, 8).curve;
  display::HierarchicalLadder ladder;
  for (auto _ : state) {
    ladder.program(lambda, 150.0 / 255.0);
    benchmark::DoNotOptimize(ladder.node_voltages());
  }
}
BENCHMARK(BM_LadderProgram);

void BM_LutApply(benchmark::State& state) {
  const auto hist = histogram::Histogram::from_image(test_image());
  const auto lut = core::ghe_lut(hist, core::GheTarget{0, 150});
  for (auto _ : state) {
    benchmark::DoNotOptimize(lut.apply(test_image()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(test_image().size()));
}
BENCHMARK(BM_LutApply);

void BM_FullPipelineAtRange(benchmark::State& state) {
  // Histogram -> GHE -> PLC -> β -> evaluation (the Fig. 4 flow,
  // including the distortion measurement our evaluation adds).
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::hebs_at_range(test_image(), 150, {}, platform()));
  }
}
BENCHMARK(BM_FullPipelineAtRange)->Unit(benchmark::kMillisecond);

void BM_DistortionUiqiHvs(benchmark::State& state) {
  const auto& img = test_image();
  const auto hist = histogram::Histogram::from_image(img);
  const auto lut = core::ghe_lut(hist, core::GheTarget{0, 150});
  const auto transformed = lut.apply(img);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quality::distortion_percent(img, transformed));
  }
  state.SetLabel("the offline-only stage");
}
BENCHMARK(BM_DistortionUiqiHvs)->Unit(benchmark::kMillisecond);

void BM_ExactSearch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::hebs_exact(test_image(), 10.0, {}, platform()));
  }
}
BENCHMARK(BM_ExactSearch)->Unit(benchmark::kMillisecond);

void BM_CurveLookupFlow(benchmark::State& state) {
  // The deployed per-frame runtime flow of Fig. 4: curve lookup ->
  // histogram -> GHE -> PLC -> ladder programming.  No perceptual-metric
  // evaluation happens here — that is exactly what the offline
  // characterization buys (§3).
  static const auto curve = [] {
    const auto album = image::usid_figure8_subset(64);
    const auto ranges = core::DistortionCurve::default_ranges();
    return core::DistortionCurve::characterize(album, ranges, {},
                                               platform());
  }();
  display::HierarchicalLadder ladder;
  for (auto _ : state) {
    const int range = curve.min_range_for(10.0);
    const auto hist = histogram::Histogram::from_image(test_image());
    const auto phi =
        core::ghe_transform(hist, core::GheTarget{0, range});
    const auto lambda = core::plc_coarsen(phi, 8).curve;
    ladder.program(lambda, range / 255.0);
    benchmark::DoNotOptimize(ladder.node_voltages());
  }
  state.SetLabel("runtime flow of Fig. 4, no metric in the loop");
}
BENCHMARK(BM_CurveLookupFlow)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
