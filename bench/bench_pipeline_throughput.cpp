// Pipeline throughput: stage microbenchmarks (google-benchmark) plus the
// batch acceptance report comparing the serial seed path against the
// PipelineEngine.
//
// Supports the paper's hardware-efficiency claims (§1 advantage 3,
// Fig. 4): histogram extraction, the GHE solve, the O(m n²) PLC dynamic
// program, ladder programming (Eq. 10) and LUT application must all fit
// comfortably inside a frame time; the perceptual metric is the one
// stage that does not — which is exactly why HEBS precharacterizes the
// distortion curve offline.
//
// The report (printed before the microbenchmarks run) processes a
// 64-image batch with hebs_exact three ways — the seed's serial
// uncached path, the engine with 1 worker (isolating the FrameContext
// caching win), and the engine with 8 workers — verifies the outputs
// are bit-identical, and prints the speedups.  Flags:
//   --report-batch=N   batch size for the report (default 64)
//   --report-only      skip the google-benchmark suite
//   --skip-report      run only the google-benchmark suite
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hebs/advanced/core.h"
#include "hebs/advanced/display.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/kernels.h"
#include "hebs/advanced/obs.h"
#include "hebs/advanced/pipeline.h"
#include "hebs/advanced/quality.h"

namespace {

using namespace hebs;

const image::GrayImage& test_image() {
  static const auto img = image::make_usid(image::UsidId::kLena, 256);
  return img;
}

const power::LcdSubsystemPower& platform() {
  static const auto model = power::LcdSubsystemPower::lp064v1();
  return model;
}

// ------------------------------------------------------------------------
// Batch acceptance report
// ------------------------------------------------------------------------

// Frozen copy of the seed's serial implementation (pre-pipeline): every
// probe recomputes the histogram, the reference rasters, the reference
// side of the perceptual metric and the reference power from scratch,
// and evaluates transfer curves with a per-level binary search.  This is
// the baseline the engine's caching and batching are measured against;
// its outputs are bit-identical to the pipeline's (the refactor
// reordered no arithmetic), which the report verifies.
namespace seed {

// -- original HVS front end (border-clamped blur on every pixel) --------

image::FloatImage gaussian_blur(const image::FloatImage& in, double sigma) {
  const int w = in.width();
  const int h = in.height();
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
  std::vector<double> kernel(static_cast<std::size_t>(2 * radius) + 1);
  double norm = 0.0;
  for (int k = -radius; k <= radius; ++k) {
    const double v = std::exp(-(k * k) / (2.0 * sigma * sigma));
    kernel[static_cast<std::size_t>(k + radius)] = v;
    norm += v;
  }
  for (auto& v : kernel) v /= norm;

  image::FloatImage tmp(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      double acc = 0.0;
      for (int k = -radius; k <= radius; ++k) {
        const int xx = std::clamp(x + k, 0, w - 1);
        acc += kernel[static_cast<std::size_t>(k + radius)] * in(xx, y);
      }
      tmp(x, y) = acc;
    }
  }
  image::FloatImage out(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      double acc = 0.0;
      for (int k = -radius; k <= radius; ++k) {
        const int yy = std::clamp(y + k, 0, h - 1);
        acc += kernel[static_cast<std::size_t>(k + radius)] * tmp(x, yy);
      }
      out(x, y) = acc;
    }
  }
  return out;
}

image::FloatImage hvs_transform(const image::FloatImage& lum,
                                const quality::HvsOptions& opts) {
  image::FloatImage out(lum.width(), lum.height());
  const auto src = lum.values();
  auto dst = out.values();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = opts.lightness_mapping
                 ? quality::lightness(src[i])
                 : std::min(1.0, std::max(0.0, src[i]));
  }
  if (opts.csf_sigma > 0.0) {
    out = gaussian_blur(out, opts.csf_sigma);
  }
  return out;
}

// -- original windowed UIQI (five integral images with temporaries) -----

class Integral {
 public:
  Integral(std::span<const double> values, int width, int height)
      : width_(width), height_(height) {
    const std::size_t stride = static_cast<std::size_t>(width) + 1;
    table_.assign(stride * (static_cast<std::size_t>(height) + 1), 0.0);
    for (int y = 0; y < height; ++y) {
      double row = 0.0;
      for (int x = 0; x < width; ++x) {
        row += values[static_cast<std::size_t>(y) * width + x];
        table_[(static_cast<std::size_t>(y) + 1) * stride + x + 1] =
            table_[static_cast<std::size_t>(y) * stride + x + 1] + row;
      }
    }
  }

  double rect_sum(int x0, int y0, int x1, int y1) const noexcept {
    const std::size_t stride = static_cast<std::size_t>(width_) + 1;
    const auto at = [this, stride](int x, int y) {
      return table_[static_cast<std::size_t>(y) * stride + x];
    };
    return at(x1 + 1, y1 + 1) - at(x0, y1 + 1) - at(x1 + 1, y0) +
           at(x0, y0);
  }

 private:
  int width_;
  int height_;
  std::vector<double> table_;
};

double uiqi(const image::FloatImage& fa, const image::FloatImage& fb,
            const quality::UiqiOptions& opts) {
  const auto a = fa.values();
  const auto b = fb.values();
  const int width = fa.width();
  const int height = fa.height();
  std::vector<double> sq_a(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) sq_a[i] = a[i] * a[i];
  std::vector<double> sq_b(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) sq_b[i] = b[i] * b[i];
  std::vector<double> prod(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) prod[i] = a[i] * b[i];
  const Integral sum_a(a, width, height);
  const Integral sum_b(b, width, height);
  const Integral sum_aa(sq_a, width, height);
  const Integral sum_bb(sq_b, width, height);
  const Integral sum_ab(prod, width, height);

  double acc = 0.0;
  std::size_t windows = 0;
  for (int y = 0; y + opts.block_size <= height; y += opts.stride) {
    for (int x = 0; x + opts.block_size <= width; x += opts.stride) {
      const int x1 = x + opts.block_size - 1;
      const int y1 = y + opts.block_size - 1;
      const double n =
          static_cast<double>(opts.block_size) * opts.block_size;
      const double mean_a = sum_a.rect_sum(x, y, x1, y1) / n;
      const double mean_b = sum_b.rect_sum(x, y, x1, y1) / n;
      double var_a = sum_aa.rect_sum(x, y, x1, y1) / n - mean_a * mean_a;
      double var_b = sum_bb.rect_sum(x, y, x1, y1) / n - mean_b * mean_b;
      const double cov_ab =
          sum_ab.rect_sum(x, y, x1, y1) / n - mean_a * mean_b;
      if (var_a < 0.0) var_a = 0.0;
      if (var_b < 0.0) var_b = 0.0;
      const double mean_prod = mean_a * mean_b;
      const double denom1 = mean_a * mean_a + mean_b * mean_b;
      const double denom2 = var_a + var_b;
      double q = 1.0;
      if (denom1 * denom2 > 0.0) {
        q = 4.0 * cov_ab * mean_prod / (denom1 * denom2);
      } else if (denom1 > 0.0) {
        q = 2.0 * mean_prod / denom1;
      }
      acc += q;
      ++windows;
    }
  }
  return windows > 0 ? acc / static_cast<double>(windows) : 1.0;
}

// -- original PLC dynamic program (nested-vector tables, no pruning) ----

core::PlcResult plc_coarsen(const transform::PwlCurve& exact, int segments) {
  const auto& pts = exact.points();
  const std::size_t n = pts.size();

  core::PlcResult result;
  if (static_cast<std::size_t>(segments) >= n - 1) {
    result.curve = exact;
    result.mse = 0.0;
    result.breakpoint_indices.resize(n);
    for (std::size_t i = 0; i < n; ++i) result.breakpoint_indices[i] = i;
    return result;
  }

  // Prefix sums for the O(1) chord-error oracle, as in the seed.
  std::vector<double> sx(n + 1, 0.0), sy(n + 1, 0.0), sxx(n + 1, 0.0),
      syy(n + 1, 0.0), sxy(n + 1, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    sx[k + 1] = sx[k] + pts[k].x;
    sy[k + 1] = sy[k] + pts[k].y;
    sxx[k + 1] = sxx[k] + pts[k].x * pts[k].x;
    syy[k + 1] = syy[k] + pts[k].y * pts[k].y;
    sxy[k + 1] = sxy[k] + pts[k].x * pts[k].y;
  }
  auto chord = [&](std::size_t j, std::size_t i) {
    const auto& pj = pts[j];
    const auto& pi = pts[i];
    const double s = (pi.y - pj.y) / (pi.x - pj.x);
    const double nn = static_cast<double>(i - j + 1);
    const double sum_x = sx[i + 1] - sx[j];
    const double sum_y = sy[i + 1] - sy[j];
    const double sum_xx = sxx[i + 1] - sxx[j];
    const double sum_yy = syy[i + 1] - syy[j];
    const double sum_xy = sxy[i + 1] - sxy[j];
    const double sum_dyy = sum_yy - 2.0 * pj.y * sum_y + nn * pj.y * pj.y;
    const double sum_dxx = sum_xx - 2.0 * pj.x * sum_x + nn * pj.x * pj.x;
    const double sum_dxy =
        sum_xy - pj.x * sum_y - pj.y * sum_x + nn * pj.x * pj.y;
    const double err = sum_dyy - 2.0 * s * sum_dxy + s * s * sum_dxx;
    return err > 0.0 ? err : 0.0;
  };

  const auto m = static_cast<std::size_t>(segments);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> best(n, std::vector<double>(m + 1, kInf));
  std::vector<std::vector<std::size_t>> parent(
      n, std::vector<std::size_t>(m + 1, 0));
  best[0][0] = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t max_s = std::min(m, i);
    for (std::size_t s = 1; s <= max_s; ++s) {
      for (std::size_t j = s - 1; j < i; ++j) {
        if (best[j][s - 1] == kInf) continue;
        const double candidate = best[j][s - 1] + chord(j, i);
        if (candidate < best[i][s]) {
          best[i][s] = candidate;
          parent[i][s] = j;
        }
      }
    }
  }
  std::size_t best_s = m;
  for (std::size_t s = 1; s <= m; ++s) {
    if (best[n - 1][s] < best[n - 1][best_s]) best_s = s;
  }
  std::vector<std::size_t> chosen;
  std::size_t i = n - 1;
  std::size_t s = best_s;
  while (true) {
    chosen.push_back(i);
    if (s == 0) break;
    i = parent[i][s];
    --s;
  }
  std::reverse(chosen.begin(), chosen.end());
  std::vector<transform::CurvePoint> qpts;
  qpts.reserve(chosen.size());
  for (std::size_t idx : chosen) qpts.push_back(pts[idx]);
  result.curve = transform::PwlCurve(qpts);
  result.mse = best[n - 1][best_s] / static_cast<double>(n);
  result.breakpoint_indices.assign(chosen.begin(), chosen.end());
  return result;
}

double distortion_percent(const image::FloatImage& reference,
                          const image::FloatImage& displayed,
                          const quality::DistortionOptions& opts) {
  // The seed's UIQI+HVS dispatch: both rasters through the HVS front
  // end, then one five-integral build over the pair.
  const double q = seed::uiqi(seed::hvs_transform(reference, opts.hvs),
                              seed::hvs_transform(displayed, opts.hvs),
                              opts.uiqi);
  const double percent = (1.0 - q) / 2.0 * 100.0;
  return std::min(100.0, std::max(0.0, percent));
}

core::EvaluatedPoint evaluate_operating_point(
    const image::GrayImage& original, const core::OperatingPoint& point,
    const core::HebsOptions& opts) {
  core::EvaluatedPoint out;
  out.point = point;
  std::array<double, image::kLevels> lum{};
  for (int level = 0; level < image::kLevels; ++level) {
    const double x = static_cast<double>(level) / image::kMaxPixel;
    const double y = point.luminance_transform(x);  // binary search
    lum[static_cast<std::size_t>(level)] =
        std::min(point.beta, std::min(1.0, std::max(0.0, y)));
  }
  image::FloatImage displayed(original.width(), original.height());
  {
    auto dst = displayed.values();
    const auto src = original.pixels();
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] = lum[src[i]];
  }
  const auto reference = image::FloatImage::from_gray(original);
  out.distortion_percent =
      seed::distortion_percent(reference, displayed, opts.distortion);
  out.transformed = displayed.to_gray();

  const auto hist = histogram::Histogram::from_image(original);
  double panel_watts = 0.0;
  for (int level = 0; level < histogram::Histogram::kBins; ++level) {
    const double t = std::min(
        1.0, std::max(0.0, lum[static_cast<std::size_t>(level)] /
                               point.beta));
    panel_watts += platform().panel().pixel_power(t) *
                   static_cast<double>(hist.count(level));
  }
  panel_watts /= static_cast<double>(hist.total());
  out.power.ccfl_watts = platform().ccfl().power(point.beta);
  out.power.panel_watts = panel_watts;
  out.reference_power = platform().frame_power(hist, 1.0);
  out.saving_percent =
      100.0 * (1.0 - out.power.total() / out.reference_power.total());
  return out;
}

transform::PwlCurve affine_placement(int lo, int hi, int g_min, int g_max) {
  const double xn_lo = static_cast<double>(lo) / image::kMaxPixel;
  const double xn_hi = static_cast<double>(hi) / image::kMaxPixel;
  const double yn_lo = static_cast<double>(g_min) / image::kMaxPixel;
  const double yn_hi = static_cast<double>(g_max) / image::kMaxPixel;
  std::vector<transform::CurvePoint> pts;
  if (lo > 0) pts.push_back({0.0, yn_lo});
  pts.push_back({xn_lo, yn_lo});
  pts.push_back({xn_hi, yn_hi});
  if (hi < image::kMaxPixel) pts.push_back({1.0, yn_hi});
  return transform::PwlCurve(std::move(pts));
}

transform::PwlCurve blend_curves(const transform::PwlCurve& a,
                                 const transform::PwlCurve& b, double w) {
  std::vector<transform::CurvePoint> pts;
  pts.reserve(static_cast<std::size_t>(image::kLevels));
  for (int level = 0; level < image::kLevels; ++level) {
    const double x = static_cast<double>(level) / image::kMaxPixel;
    pts.push_back({x, w * a(x) + (1.0 - w) * b(x)});  // binary searches
  }
  return transform::PwlCurve(std::move(pts));
}

core::HebsResult hebs_at_range(const image::GrayImage& img, int range,
                               const core::HebsOptions& opts) {
  const auto hist = histogram::Histogram::from_image(img);
  const int lo = hist.min_level();
  const int hi = hist.max_level();
  const int native = hi - lo;
  const int g_max = std::min(opts.g_min + range, std::max(hi, 1));
  const int g_min_eff =
      native > 0 ? std::max(opts.g_min, g_max - native) : opts.g_min;
  const int width = g_max - g_min_eff;

  core::HebsResult result;
  result.target = core::GheTarget{g_min_eff, g_max};
  const auto ghe = core::ghe_transform(hist, result.target);
  double w = opts.equalization_strength;
  if (w < 0.0) {
    w = native > 0
            ? 1.0 - static_cast<double>(width) / static_cast<double>(native)
            : 1.0;
  }
  if (native <= 0) w = 1.0;
  result.phi = w >= 1.0 ? ghe
                        : blend_curves(
                              ghe, affine_placement(lo, hi, g_min_eff, g_max),
                              w);
  core::PlcResult plc = seed::plc_coarsen(result.phi, opts.segments);
  result.lambda = std::move(plc.curve);
  result.plc_mse = plc.mse;
  const double beta = core::beta_for_gmax(g_max, opts.min_beta);
  result.point = core::OperatingPoint{result.lambda, beta};
  result.evaluation = evaluate_operating_point(img, result.point, opts);
  return result;
}

core::HebsResult hebs_exact(const image::GrayImage& img, double d_max_percent,
                            const core::HebsOptions& opts) {
  const int hi = image::kMaxPixel - opts.g_min;
  const int lo = std::min(opts.min_range, hi);
  auto distortion_at = [&](int range) {
    return hebs_at_range(img, range, opts).evaluation.distortion_percent;
  };

  core::HebsResult result;
  if (distortion_at(hi) > d_max_percent) {
    return hebs_at_range(img, hi, opts);
  }
  if (distortion_at(lo) <= d_max_percent) {
    result = hebs_at_range(img, lo, opts);
  } else {
    int infeasible = lo;
    int feasible = hi;
    while (feasible - infeasible > 1) {
      const int mid = (feasible + infeasible) / 2;
      if (distortion_at(mid) <= d_max_percent) {
        feasible = mid;
      } else {
        infeasible = mid;
      }
    }
    result = hebs_at_range(img, feasible, opts);
  }
  if (opts.concurrent_scaling) {
    const core::OperatingPoint base = result.point;
    auto eval_at = [&](double beta) {
      const core::OperatingPoint p{base.luminance_transform,
                                   std::max(opts.min_beta, beta)};
      return evaluate_operating_point(img, p, opts);
    };
    const double floor_beta = std::max(opts.min_beta, 0.25 * base.beta);
    core::EvaluatedPoint best = result.evaluation;
    auto at_floor = eval_at(floor_beta);
    if (at_floor.distortion_percent <= d_max_percent) {
      best = at_floor;
    } else {
      double feasible = base.beta;
      double infeasible = floor_beta;
      for (int i = 0; i < 12; ++i) {
        const double mid = (feasible + infeasible) / 2.0;
        const auto eval = eval_at(mid);
        if (eval.distortion_percent <= d_max_percent) {
          feasible = mid;
          best = eval;
        } else {
          infeasible = mid;
        }
      }
    }
    if (best.saving_percent > result.evaluation.saving_percent) {
      result.point = best.point;
      result.evaluation = best;
    }
  }
  return result;
}

}  // namespace seed

core::HebsResult seed_serial_hebs_exact(const image::GrayImage& img,
                                        double d_max_percent,
                                        const core::HebsOptions& opts) {
  return seed::hebs_exact(img, d_max_percent, opts);
}

std::vector<image::GrayImage> report_batch(int count, int size) {
  const auto album = image::usid_album(size);
  std::vector<image::GrayImage> images;
  images.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    images.push_back(album[static_cast<std::size_t>(i) % album.size()].image);
  }
  return images;
}

bool same_result(const core::HebsResult& a, const core::HebsResult& b) {
  return a.point.beta == b.point.beta &&
         a.lambda.points() == b.lambda.points() &&
         a.evaluation.distortion_percent ==
             b.evaluation.distortion_percent &&
         a.evaluation.saving_percent == b.evaluation.saving_percent &&
         a.evaluation.transformed == b.evaluation.transformed;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

int run_batch_report(int batch_size) {
  constexpr double kBudget = 10.0;
  constexpr int kSize = 96;
  const auto images = report_batch(batch_size, kSize);
  const std::string backend = kernels::active().name;
  std::vector<hebs::bench::BenchRecord> records;
  const auto record = [&](const std::string& config, double elapsed_s) {
    records.push_back(
        {"pipeline_throughput", config, elapsed_s / batch_size * 1e9,
         static_cast<double>(batch_size) * kSize * kSize / elapsed_s / 1e6,
         backend});
  };

  std::printf("=== Batch throughput: hebs_exact, %d images (%dx%d), "
              "D_max %.0f%%, kernel backend %s ===\n",
              batch_size, kSize, kSize, kBudget, backend.c_str());

  const auto t_serial = std::chrono::steady_clock::now();
  std::vector<core::HebsResult> serial;
  serial.reserve(images.size());
  for (const auto& img : images) {
    serial.push_back(seed_serial_hebs_exact(img, kBudget, {}));
  }
  const double serial_s = seconds_since(t_serial);
  std::printf("  serial seed path     : %7.2f s  (%6.1f ms/image)\n",
              serial_s, 1000.0 * serial_s / batch_size);
  record("serial-seed", serial_s);

  double engine1_s = 0.0;
  for (int threads : {1, 8}) {
    pipeline::EngineOptions opts;
    opts.num_threads = threads;
    pipeline::PipelineEngine engine(opts, platform());
    const auto t = std::chrono::steady_clock::now();
    const auto batch = engine.process_batch(images, kBudget);
    const double elapsed = seconds_since(t);
    if (threads == 1) engine1_s = elapsed;
    record("engine-" + std::to_string(threads) + "t", elapsed);
    std::printf("  engine, %d thread%s    : %7.2f s  (%6.1f ms/image)  "
                "speedup %.2fx\n",
                threads, threads == 1 ? " " : "s", elapsed,
                1000.0 * elapsed / batch_size, serial_s / elapsed);

    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < images.size(); ++i) {
      if (!same_result(batch[i], serial[i])) ++mismatches;
    }
    std::printf("  bit-identical to serial (%d thread%s): %s\n", threads,
                threads == 1 ? "" : "s",
                mismatches == 0
                    ? "yes"
                    : ("NO — " + std::to_string(mismatches) + " mismatches")
                          .c_str());
    if (mismatches != 0) return 1;
  }
  std::printf("  caching win alone (1 thread): %.2fx\n\n",
              serial_s / engine1_s);
  hebs::bench::write_bench_json("BENCH_pipeline.json", records);
  return 0;
}

// ------------------------------------------------------------------------
// Cold-frame stage breakdown
// ------------------------------------------------------------------------

// Attributes the cold-frame latency budget stage by stage from the
// observability layer's own span tracer and counter registry: N cold
// frames run under tracing (coarse-to-fine search on and off), and the
// table aggregates the recorded spans per stage — so the breakdown is
// exactly what a Perfetto view of a production trace shows, including
// the per-probe costs and memo hit rates the ad-hoc stage timers of the
// previous incarnation could not see.
int run_stage_breakdown() {
  constexpr double kBudget = 10.0;
  constexpr int kSize = hebs::bench::kImageSize;
  constexpr int kReps = 30;
  const auto album = image::usid_album(kSize);
  const auto& img = album[0].image;

  std::printf("=== Cold-frame stage breakdown: %s (%dx%d), D_max %.0f%%, "
              "kernel backend %s ===\n",
              album[0].name.c_str(), kSize, kSize, kBudget,
              kernels::active().name);
  std::printf("span-tracer attribution over %d cold frames per search "
              "mode\n\n", kReps);

  struct StageAgg {
    double total_ms = 0.0;
    std::uint64_t events = 0;
  };
  struct ModeReport {
    std::array<StageAgg, obs::kSpanCount> stages{};
    double frame_ms = 0.0;  ///< mean end-to-end kFrame span
    obs::CounterSnapshot delta;
  };

  const auto run_traced = [&](bool coarse) {
    pipeline::EngineOptions opts;
    opts.num_threads = 1;
    opts.hebs.coarse_search = coarse;
    pipeline::PipelineEngine engine(opts);
    obs::clear_trace();
    const auto before = obs::snapshot_counters();
    for (int r = 0; r < kReps; ++r) {
      const std::span<const image::GrayImage> one(&img, 1);
      benchmark::DoNotOptimize(engine.process_batch(one, kBudget));
    }
    ModeReport report;
    report.delta = obs::snapshot_counters().delta_since(before);
    for (const obs::CollectedSpan& s : obs::collect_trace()) {
      auto& agg = report.stages[static_cast<std::size_t>(s.span)];
      agg.total_ms += static_cast<double>(s.dur_ns) / 1e6;
      ++agg.events;
    }
    const auto& frame =
        report.stages[static_cast<std::size_t>(obs::Span::kFrame)];
    report.frame_ms = frame.events == 0
                          ? 0.0
                          : frame.total_ms /
                                static_cast<double>(frame.events);
    return report;
  };

  obs::start_tracing();
  const ModeReport coarse = run_traced(true);
  const ModeReport bisect = run_traced(false);
  obs::stop_tracing();

  std::printf("  %-22s %12s %12s %14s\n", "stage (span)", "ms/frame",
              "events/frame", "ms/event");
  const obs::Span rows[] = {obs::Span::kHistogram, obs::Span::kRangeSearch,
                            obs::Span::kRangeProbe, obs::Span::kBetaRefine,
                            obs::Span::kBetaProbe, obs::Span::kLutApply};
  for (const obs::Span span : rows) {
    const StageAgg& agg = coarse.stages[static_cast<std::size_t>(span)];
    if (agg.events == 0) continue;
    const double per_frame = agg.total_ms / kReps;
    const double events_per_frame =
        static_cast<double>(agg.events) / kReps;
    std::printf("  %-22s %12.3f %12.1f %14.4f\n", obs::span_name(span),
                per_frame, events_per_frame,
                agg.total_ms / static_cast<double>(agg.events));
  }
  std::printf("  %-22s %12.3f\n", "frame (end-to-end)", coarse.frame_ms);

  const auto probes_per_frame = [](const ModeReport& m) {
    return static_cast<double>(m.delta[obs::Counter::kRangeProbes]) / kReps;
  };
  const auto memo_rate = [](const ModeReport& m) {
    const auto hits = m.delta[obs::Counter::kEvalMemoHit];
    const auto misses = m.delta[obs::Counter::kEvalMemoMiss];
    return hits + misses == 0
               ? 0.0
               : 100.0 * static_cast<double>(hits) /
                     static_cast<double>(hits + misses);
  };
  std::printf("\n  exact probes/frame     : %6.1f coarse, %6.1f bisect\n",
              probes_per_frame(coarse), probes_per_frame(bisect));
  std::printf("  eval-memo hit rate     : %6.1f%% coarse, %6.1f%% bisect\n",
              memo_rate(coarse), memo_rate(bisect));
  std::printf("  cold frame, bisection  : %8.3f ms\n", bisect.frame_ms);
  std::printf("  cold frame, coarse     : %8.3f ms  (speedup %.2fx)\n",
              coarse.frame_ms, bisect.frame_ms / coarse.frame_ms);
  return 0;
}

// ------------------------------------------------------------------------
// Stage microbenchmarks
// ------------------------------------------------------------------------

void BM_HistogramFromImage(benchmark::State& state) {
  const auto& img = test_image();
  for (auto _ : state) {
    benchmark::DoNotOptimize(histogram::Histogram::from_image(img));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(img.size()));
}
BENCHMARK(BM_HistogramFromImage);

void BM_GheSolve(benchmark::State& state) {
  const auto hist = histogram::Histogram::from_image(test_image());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ghe_transform(hist, core::GheTarget{0, 150}));
  }
}
BENCHMARK(BM_GheSolve);

void BM_PlcCoarsen(benchmark::State& state) {
  const auto hist = histogram::Histogram::from_image(test_image());
  const auto phi = core::ghe_transform(hist, core::GheTarget{0, 150});
  const int segments = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::plc_coarsen(phi, segments));
  }
}
BENCHMARK(BM_PlcCoarsen)->Arg(2)->Arg(8)->Arg(32);

void BM_LadderProgram(benchmark::State& state) {
  const auto hist = histogram::Histogram::from_image(test_image());
  const auto phi = core::ghe_transform(hist, core::GheTarget{0, 150});
  const auto lambda = core::plc_coarsen(phi, 8).curve;
  display::HierarchicalLadder ladder;
  for (auto _ : state) {
    ladder.program(lambda, 150.0 / 255.0);
    benchmark::DoNotOptimize(ladder.node_voltages());
  }
}
BENCHMARK(BM_LadderProgram);

void BM_LutApply(benchmark::State& state) {
  const auto hist = histogram::Histogram::from_image(test_image());
  const auto lut = core::ghe_lut(hist, core::GheTarget{0, 150});
  for (auto _ : state) {
    benchmark::DoNotOptimize(lut.apply(test_image()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(test_image().size()));
}
BENCHMARK(BM_LutApply);

void BM_CurveSampleLevels(benchmark::State& state) {
  // The one-sweep per-level sampling that replaced 256 binary searches
  // in the evaluation path.
  const auto hist = histogram::Histogram::from_image(test_image());
  const auto phi = core::ghe_transform(hist, core::GheTarget{0, 150});
  for (auto _ : state) {
    benchmark::DoNotOptimize(phi.sample_levels());
  }
}
BENCHMARK(BM_CurveSampleLevels);

void BM_FullPipelineAtRange(benchmark::State& state) {
  // Histogram -> GHE -> PLC -> β -> evaluation (the Fig. 4 flow,
  // including the distortion measurement our evaluation adds).
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::hebs_at_range(test_image(), 150, {}, platform()));
  }
}
BENCHMARK(BM_FullPipelineAtRange)->Unit(benchmark::kMillisecond);

void BM_DistortionUiqiHvs(benchmark::State& state) {
  const auto& img = test_image();
  const auto hist = histogram::Histogram::from_image(img);
  const auto lut = core::ghe_lut(hist, core::GheTarget{0, 150});
  const auto transformed = lut.apply(img);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quality::distortion_percent(img, transformed));
  }
  state.SetLabel("the offline-only stage");
}
BENCHMARK(BM_DistortionUiqiHvs)->Unit(benchmark::kMillisecond);

void BM_DistortionEvaluatorReuse(benchmark::State& state) {
  // Same measurement with the reference-side caches built once — the
  // per-probe cost inside hebs_exact's bisection.
  const auto& img = test_image();
  const auto hist = histogram::Histogram::from_image(img);
  const auto lut = core::ghe_lut(hist, core::GheTarget{0, 150});
  const auto transformed =
      image::FloatImage::from_gray(lut.apply(img));
  const quality::DistortionEvaluator evaluator(
      image::FloatImage::from_gray(img));
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.percent(transformed));
  }
}
BENCHMARK(BM_DistortionEvaluatorReuse)->Unit(benchmark::kMillisecond);

void BM_ExactSearch(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::hebs_exact(test_image(), 10.0, {}, platform()));
  }
}
BENCHMARK(BM_ExactSearch)->Unit(benchmark::kMillisecond);

void BM_ExactSearchSeedPath(benchmark::State& state) {
  // The uncached per-probe replay — what hebs_exact cost before the
  // staged pipeline's FrameContext memoization.
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        seed_serial_hebs_exact(test_image(), 10.0, {}));
  }
}
BENCHMARK(BM_ExactSearchSeedPath)->Unit(benchmark::kMillisecond);

void BM_CurveLookupFlow(benchmark::State& state) {
  // The deployed per-frame runtime flow of Fig. 4: curve lookup ->
  // histogram -> GHE -> PLC -> ladder programming.  No perceptual-metric
  // evaluation happens here — that is exactly what the offline
  // characterization buys (§3).
  static const auto curve = [] {
    const auto album = image::usid_figure8_subset(64);
    const auto ranges = core::DistortionCurve::default_ranges();
    return core::DistortionCurve::characterize(album, ranges, {},
                                               platform());
  }();
  display::HierarchicalLadder ladder;
  for (auto _ : state) {
    const int range = curve.min_range_for(10.0);
    const auto hist = histogram::Histogram::from_image(test_image());
    const auto phi =
        core::ghe_transform(hist, core::GheTarget{0, range});
    const auto lambda = core::plc_coarsen(phi, 8).curve;
    ladder.program(lambda, range / 255.0);
    benchmark::DoNotOptimize(ladder.node_voltages());
  }
  state.SetLabel("runtime flow of Fig. 4, no metric in the loop");
}
BENCHMARK(BM_CurveLookupFlow)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  int report_batch_size = 64;
  bool report_only = false;
  bool skip_report = false;
  bool stage_breakdown = false;
  // Strip our flags before handing the rest to google-benchmark.
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--report-batch=", 15) == 0) {
      report_batch_size = std::max(1, std::atoi(arg + 15));
    } else if (std::strcmp(arg, "--report-only") == 0) {
      report_only = true;
    } else if (std::strcmp(arg, "--skip-report") == 0) {
      skip_report = true;
    } else if (std::strcmp(arg, "--stage-breakdown") == 0) {
      stage_breakdown = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (stage_breakdown) {
    return run_stage_breakdown();
  }
  if (!skip_report) {
    const int rc = run_batch_report(report_batch_size);
    if (rc != 0) return rc;
    if (report_only) return 0;
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
