// Shared helpers for the benchmark harness.
//
// Every bench binary regenerates one table or figure of the paper: it
// prints a paper-style console table and writes the underlying series to
// CSV under ./bench_results/ so plots can be reproduced externally.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "hebs/advanced/image.h"
#include "hebs/advanced/power.h"
#include "hebs/advanced/util.h"

namespace hebs::bench {

/// Side length used for benchmark images (large enough for stable UIQI
/// statistics, small enough to keep every bench under a minute).
inline constexpr int kImageSize = 96;

/// Directory all bench CSVs are written to (created on demand).
inline std::string results_dir() {
  const std::string dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Opens a CSV in the results directory.
inline hebs::util::CsvWriter open_csv(const std::string& name) {
  return hebs::util::CsvWriter(results_dir() + "/" + name);
}

/// The paper's measurement platform.
inline const hebs::power::LcdSubsystemPower& platform() {
  static const auto model = hebs::power::LcdSubsystemPower::lp064v1();
  return model;
}

/// Prints a section header for a bench binary.
inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("Reproduces: %s\n\n", paper_ref.c_str());
}

/// One machine-readable benchmark record.  The perf-tracking benches
/// (bench_pipeline_throughput, bench_kernel_dispatch) append these and
/// write a BENCH_*.json next to the working directory so the perf
/// trajectory can be diffed across PRs.
struct BenchRecord {
  std::string bench;    ///< bench binary / scenario family
  std::string config;   ///< measured configuration within the bench
  double ns_per_frame;  ///< wall time per processed frame/raster, ns
  double mpix_per_s;    ///< throughput in megapixels per second
  std::string backend;  ///< active kernel backend during the run
  // Observability columns (counter deltas over the measured run, per
  // processed frame).  Benches that predate the counter registry, or
  // whose workload has no search/temporal stage, leave the zeros.
  double range_probes_per_frame = 0.0;  ///< exact range-search probes
  double reuse_byte_identical = 0.0;    ///< temporal level counts ...
  double reuse_delta_refresh = 0.0;     ///< ... over the whole run
  double reuse_cold = 0.0;
};

/// Writes records as a JSON array:
///   [{"bench": ..., "config": ..., "ns_per_frame": ...,
///     "mpix_per_s": ..., "backend": ..., "range_probes_per_frame": ...,
///     "reuse_byte_identical": ..., "reuse_delta_refresh": ...,
///     "reuse_cold": ...}, ...]
inline void write_bench_json(const std::string& path,
                             const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "  {\"bench\": \"%s\", \"config\": \"%s\", "
                 "\"ns_per_frame\": %.1f, \"mpix_per_s\": %.3f, "
                 "\"backend\": \"%s\", "
                 "\"range_probes_per_frame\": %.2f, "
                 "\"reuse_byte_identical\": %.0f, "
                 "\"reuse_delta_refresh\": %.0f, "
                 "\"reuse_cold\": %.0f}%s\n",
                 r.bench.c_str(), r.config.c_str(), r.ns_per_frame,
                 r.mpix_per_s, r.backend.c_str(), r.range_probes_per_frame,
                 r.reuse_byte_identical, r.reuse_delta_refresh, r.reuse_cold,
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu records)\n", path.c_str(), records.size());
}

/// Merges pre-rendered record lines into an existing BENCH json written
/// by write_bench_json (one `  {...}` object per line): records from
/// other benches are kept, prior records of `bench` are replaced.  Each
/// line in `record_lines` must be a complete JSON object WITHOUT the
/// leading indent or trailing comma.
inline void merge_bench_json(const std::string& path,
                             const std::string& bench,
                             const std::vector<std::string>& record_lines) {
  const std::string marker = "\"bench\": \"" + bench + "\"";
  std::vector<std::string> kept;
  {
    std::ifstream in(path);
    std::string line;
    while (in.is_open() && std::getline(in, line)) {
      if (line.rfind("  {", 0) != 0) continue;  // array brackets
      if (line.find(marker) != std::string::npos) continue;
      if (!line.empty() && line.back() == ',') line.pop_back();
      kept.push_back(line);
    }
  }
  for (const std::string& r : record_lines) kept.push_back("  " + r);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < kept.size(); ++i) {
    std::fprintf(f, "%s%s\n", kept[i].c_str(),
                 i + 1 < kept.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %s (%zu records)\n", path.c_str(), kept.size());
}

}  // namespace hebs::bench
