// Shared helpers for the benchmark harness.
//
// Every bench binary regenerates one table or figure of the paper: it
// prints a paper-style console table and writes the underlying series to
// CSV under ./bench_results/ so plots can be reproduced externally.
#pragma once

#include <filesystem>
#include <string>

#include "hebs/advanced/image.h"
#include "hebs/advanced/power.h"
#include "hebs/advanced/util.h"

namespace hebs::bench {

/// Side length used for benchmark images (large enough for stable UIQI
/// statistics, small enough to keep every bench under a minute).
inline constexpr int kImageSize = 96;

/// Directory all bench CSVs are written to (created on demand).
inline std::string results_dir() {
  const std::string dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Opens a CSV in the results directory.
inline hebs::util::CsvWriter open_csv(const std::string& name) {
  return hebs::util::CsvWriter(results_dir() + "/" + name);
}

/// The paper's measurement platform.
inline const hebs::power::LcdSubsystemPower& platform() {
  static const auto model = hebs::power::LcdSubsystemPower::lp064v1();
  return model;
}

/// Prints a section header for a bench binary.
inline void print_header(const std::string& title,
                         const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("Reproduces: %s\n\n", paper_ref.c_str());
}

}  // namespace hebs::bench
