// Regenerates Figure 8: six sample images transformed at dynamic ranges
// 220 and 100, reporting distortion and power saving for each, and
// writing the before/after images as PGM files for visual inspection.
//
// Paper reference values: range 220 -> distortion 0.9..3.1%, saving
// 25..30%; range 100 -> distortion 5.1..10.2%, saving 42..61%.
#include <cstdio>

#include "bench_common.h"
#include "hebs/advanced/core.h"
#include "hebs/advanced/image.h"

int main() {
  using namespace hebs;
  bench::print_header("Figure 8 — sample gallery at ranges 220 and 100",
                      "Iranli et al., DATE'05, Fig. 8");

  const auto gallery = image::usid_figure8_subset(bench::kImageSize);
  const core::HebsOptions opts;
  auto csv = bench::open_csv("fig8_samples.csv");
  csv.write_row({"image", "range", "distortion_percent", "saving_percent",
                 "beta"});

  util::ConsoleTable table({"Image", "Range", "Distortion %", "Saving %",
                            "beta"});
  const std::string outdir = bench::results_dir();
  for (const auto& named : gallery) {
    image::write_pgm(named.image, outdir + "/fig8_" + named.name +
                                       "_original.pgm");
    for (int range : {220, 100}) {
      const auto r =
          core::hebs_at_range(named.image, range, opts, bench::platform());
      table.add_row({named.name, std::to_string(range),
                     util::ConsoleTable::num(
                         r.evaluation.distortion_percent, 1),
                     util::ConsoleTable::num(r.evaluation.saving_percent),
                     util::ConsoleTable::num(r.point.beta, 3)});
      csv.write_row({named.name, std::to_string(range),
                     util::CsvWriter::num(r.evaluation.distortion_percent),
                     util::CsvWriter::num(r.evaluation.saving_percent),
                     util::CsvWriter::num(r.point.beta)});
      image::write_pgm(r.evaluation.transformed,
                       outdir + "/fig8_" + named.name + "_r" +
                           std::to_string(range) + ".pgm");
    }
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nShape check (paper): range 220 -> ~1-3%% distortion and\n"
              "~25-30%% saving; range 100 -> ~5-10%% distortion and\n"
              "~42-61%% saving.  Before/after PGMs written next to the\n"
              "CSV for visual comparison.\n"
              "CSV: %s/fig8_samples.csv\n",
              bench::results_dir().c_str());
  return 0;
}
