// Streaming-estimator adequacy: how much histogram decimation can the
// HEBS controller afford?
//
// §2 notes that dimming policies need an online "image histogram
// estimator".  A hardware estimator samples a fraction of the pixel
// stream; this bench sweeps the decimation factor and measures (a) the
// histogram estimation error and (b) the end effect on HEBS's operating
// point — the saving lost and distortion drift when the pipeline runs
// on the estimate instead of the exact histogram.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "hebs/advanced/core.h"
#include "hebs/advanced/histogram.h"

namespace {

using namespace hebs;

/// HEBS steps 2-4 from a given histogram (estimate or exact) at a fixed
/// range, evaluated on the true image.
core::EvaluatedPoint run_from_histogram(
    const image::GrayImage& img, const histogram::Histogram& hist,
    int range) {
  const auto phi = core::ghe_transform(hist, core::GheTarget{0, range});
  const auto lambda = core::plc_coarsen(phi, 8).curve;
  const double beta = core::beta_for_gmax(range);
  return core::evaluate_operating_point(
      img, core::OperatingPoint{lambda, beta}, bench::platform());
}

}  // namespace

int main() {
  bench::print_header("Streaming histogram estimator adequacy",
                      "§2: 'an image histogram estimator is required'");

  const auto album = image::usid_figure8_subset(bench::kImageSize);
  const int range = 150;

  auto csv = bench::open_csv("streaming_estimator.csv");
  csv.write_row({"decimation", "mean_l1_error", "mean_distortion_drift",
                 "mean_saving_drift"});
  util::ConsoleTable table({"decimation", "histogram L1 error",
                            "distortion drift %", "saving drift %"});

  for (int decimation : {1, 4, 16, 64, 256}) {
    double l1 = 0.0;
    double d_drift = 0.0;
    double s_drift = 0.0;
    for (const auto& named : album) {
      const auto exact = histogram::Histogram::from_image(named.image);
      histogram::StreamingOptions opts;
      opts.decimation = decimation;
      histogram::StreamingHistogram est(opts);
      est.ingest(named.image);
      l1 += est.estimation_error(exact);
      const auto from_exact =
          run_from_histogram(named.image, exact, range);
      const auto from_estimate =
          run_from_histogram(named.image, est.estimate(), range);
      d_drift += std::abs(from_estimate.distortion_percent -
                          from_exact.distortion_percent);
      s_drift += std::abs(from_estimate.saving_percent -
                          from_exact.saving_percent);
    }
    const auto n = static_cast<double>(album.size());
    table.add_row({std::to_string(decimation),
                   util::ConsoleTable::num(l1 / n, 3),
                   util::ConsoleTable::num(d_drift / n, 2),
                   util::ConsoleTable::num(s_drift / n, 2)});
    csv.write_row({std::to_string(decimation),
                   util::CsvWriter::num(l1 / n),
                   util::CsvWriter::num(d_drift / n),
                   util::CsvWriter::num(s_drift / n)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nReading: the operating point barely moves even at 64x\n"
              "decimation (the CDF remap integrates out sampling noise),\n"
              "so a hardware estimator touching ~1.5%% of the pixel\n"
              "stream suffices — the §2 estimator is cheap.\n"
              "CSV: %s/streaming_estimator.csv\n",
              bench::results_dir().c_str());
  return 0;
}
