// Kernel dispatch benchmark: per-primitive throughput of every
// compiled-in, CPU-supported backend against the scalar reference.
//
// Measures the per-pixel primitives the pipeline dispatches through
// src/kernels/ (histogram accumulation, 8-bit/16-bit/f64 LUT apply,
// BT.601 luma, byte/sample sums, elementwise f64 ops, blur
// rows/columns) on a realistic synthetic frame, prints a speedup
// table, verifies that
// every backend's output is bit-identical to scalar on the bench data,
// and writes BENCH_kernels.json ({bench, config, ns_per_frame,
// mpix_per_s, backend} records) for cross-PR perf tracking.
//
// The headline number is the combined histogram+LUT speedup — the two
// primitives every displayed frame pays (Fig. 4's per-frame flow).
//
// Flags:
//   --size N                  square frame edge (default 1024)
//   --reps N                  timed repetitions per kernel (default auto)
//   --min-combined-speedup X  exit 1 unless the best backend reaches X
//                             on histogram+LUT vs scalar (default 0 =
//                             report only; the PR gate uses 3.0)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hebs/advanced/image.h"
#include "hebs/advanced/kernels.h"

namespace {

using namespace hebs;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Times fn() `reps` times and returns the best-of-3-batches seconds
/// per call (min over batches smooths scheduler noise).
template <typename Fn>
double time_per_call(int reps, Fn&& fn) {
  double best = 1e100;
  for (int batch = 0; batch < 3; ++batch) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) fn();
    best = std::min(best, seconds_since(t0) / reps);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hebs;
  using hebs::bench::write_bench_json;
  int size = 1024;
  int reps = 0;
  double min_combined = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--size=", 7) == 0) {
      size = std::max(64, std::atoi(argv[i] + 7));
    } else if (std::strcmp(argv[i], "--size") == 0 && i + 1 < argc) {
      size = std::max(64, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--min-combined-speedup") == 0 &&
               i + 1 < argc) {
      min_combined = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  const std::size_t n = static_cast<std::size_t>(size) *
                        static_cast<std::size_t>(size);
  if (reps == 0) {
    reps = std::max(3, static_cast<int>(80'000'000 / n));
  }

  bench::print_header(
      "Kernel dispatch throughput (" + std::to_string(size) + "x" +
          std::to_string(size) + ", " + std::to_string(reps) + " reps)",
      "SIMD kernel subsystem: hot per-pixel primitives vs scalar");

  // Bench data.  The content-sensitive kernels (histogram, 8-bit LUT)
  // run over a three-frame mix — a dark flat frame, a smooth gradient
  // and a textured photo — because that is what video content is made
  // of, and the scalar loops' cost is content-dependent (same-bin
  // store-forwarding chains on flat regions).  The remaining kernels
  // use the photo frame.
  const image::GrayImage frame = image::make_usid(image::UsidId::kLena, size);
  const image::GrayImage flat(size, size, 24);
  image::GrayImage gradient(size, size);
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      gradient(x, y) = static_cast<std::uint8_t>((x + y) * 255 /
                                                 (2 * size - 2));
    }
  }
  const image::GrayImage* mix[3] = {&flat, &gradient, &frame};
  const image::RgbImage rgb = image::RgbImage::from_gray(frame);
  std::vector<double> fa(n);
  std::vector<double> fb(n);
  for (std::size_t i = 0; i < n; ++i) {
    fa[i] = static_cast<double>(frame.pixels()[i]) / 255.0;
    fb[i] = static_cast<double>(frame.pixels()[n - 1 - i]) / 255.0;
  }
  std::uint8_t lut8[256];
  double lut64[256];
  for (int i = 0; i < 256; ++i) {
    lut8[i] = static_cast<std::uint8_t>((i * 150) / 255);
    lut64[i] = static_cast<double>(i) / 255.0 * 0.8;
  }

  // Deep-pixel bench data: the photo frame ratio-widened onto the
  // 10-bit lattice (the depth the Session's deep path targets first),
  // with the same backlight-scaling LUT shape.
  constexpr int kDeepLevels = 1024;
  const image::GrayImage16 frame16 =
      image::GrayImage16::widen(frame, kDeepLevels);
  std::vector<std::uint16_t> lut16(kDeepLevels);
  for (int i = 0; i < kDeepLevels; ++i) {
    lut16[i] = static_cast<std::uint16_t>((i * 600) / (kDeepLevels - 1));
  }
  const int radius = 2;
  const double taps[5] = {0.05, 0.25, 0.4, 0.25, 0.05};

  // Scratch buffers (shared across backends; parity is checked against
  // freshly captured scalar outputs).
  std::vector<std::uint8_t> out8(n);
  std::vector<std::uint8_t> out8rgb(3 * n);
  std::vector<std::uint16_t> out16(n);
  std::vector<double> outf(n);
  std::uint64_t counts[256];
  std::vector<std::uint64_t> counts16(kDeepLevels);
  volatile std::uint64_t sink = 0;

  struct KernelCase {
    const char* name;
    std::size_t pixels;  // per call, for Mpix/s
    std::function<void(const kernels::KernelSet&)> run;
  };
  const std::vector<KernelCase> cases = {
      {"histogram_u8/mix", 3 * n,
       [&](const kernels::KernelSet& k) {
         std::memset(counts, 0, sizeof(counts));
         for (const auto* img : mix) {
           k.histogram_u8(img->pixels().data(), n, counts);
         }
         sink = sink + counts[128];
       }},
      {"lut_apply_u8/mix", 3 * n,
       [&](const kernels::KernelSet& k) {
         for (const auto* img : mix) {
           k.lut_apply_u8(img->pixels().data(), n, lut8, out8.data());
         }
         sink = sink + out8[n / 2];
       }},
      {"lut_apply_rgb8", 3 * n,
       [&](const kernels::KernelSet& k) {
         k.lut_apply_rgb8(rgb.data().data(), n, lut8, out8rgb.data());
         sink = sink + out8rgb[n];
       }},
      {"luma_bt601_rgb8", n,
       [&](const kernels::KernelSet& k) {
         k.luma_bt601_rgb8(rgb.data().data(), n, out8.data());
         sink = sink + out8[n / 2];
       }},
      {"sum_u8", n,
       [&](const kernels::KernelSet& k) {
         sink = sink + k.sum_u8(frame.pixels().data(), n);
       }},
      {"histogram_u16", n,
       [&](const kernels::KernelSet& k) {
         std::memset(counts16.data(), 0,
                     counts16.size() * sizeof(std::uint64_t));
         k.histogram_u16(frame16.pixels().data(), n, counts16.data());
         sink = sink + counts16[kDeepLevels / 2];
       }},
      {"lut_apply_u16", n,
       [&](const kernels::KernelSet& k) {
         k.lut_apply_u16(frame16.pixels().data(), n, lut16.data(),
                         out16.data());
         sink = sink + out16[n / 2];
       }},
      {"sum_u16", n,
       [&](const kernels::KernelSet& k) {
         sink = sink + k.sum_u16(frame16.pixels().data(), n);
       }},
      {"lut_apply_f64", n,
       [&](const kernels::KernelSet& k) {
         k.lut_apply_f64(frame.pixels().data(), n, lut64, outf.data());
         sink = sink + static_cast<std::uint64_t>(outf[n / 2] * 255.0);
       }},
      {"mul_f64", n,
       [&](const kernels::KernelSet& k) {
         k.mul_f64(fa.data(), fb.data(), outf.data(), n);
         sink = sink + static_cast<std::uint64_t>(outf[n / 2] * 255.0);
       }},
      {"saxpy_f64", n,
       [&](const kernels::KernelSet& k) {
         std::memcpy(outf.data(), fa.data(), n * sizeof(double));
         k.saxpy_f64(0.5, fb.data(), outf.data(), n);
         sink = sink + static_cast<std::uint64_t>(outf[n / 2] * 255.0);
       }},
      {"blur_row_f64", n,
       [&](const kernels::KernelSet& k) {
         for (int y = 0; y < size; ++y) {
           k.blur_row_f64(fa.data() + static_cast<std::size_t>(y) * size,
                          outf.data() + static_cast<std::size_t>(y) * size,
                          size, taps, radius);
         }
         sink = sink + static_cast<std::uint64_t>(outf[n / 2] * 255.0);
       }},
      {"blur_col_f64", n,
       [&](const kernels::KernelSet& k) {
         for (int y = 0; y < size; ++y) {
           k.blur_col_f64(fa.data(), size, size, y, taps, radius,
                          outf.data() + static_cast<std::size_t>(y) * size);
         }
         sink = sink + static_cast<std::uint64_t>(outf[n / 2] * 255.0);
       }},
  };

  std::vector<const kernels::KernelSet*> sets;
  for (const kernels::BackendInfo& info : kernels::backends()) {
    if (info.supported) sets.push_back(info.set);
  }
  std::printf("backends:");
  for (const auto* s : sets) std::printf(" %s", s->name);
  std::printf("   (dispatch default: %s)\n\n", kernels::active().name);

  // ---------------------------------------------------------- measure
  std::vector<bench::BenchRecord> records;
  std::printf("%-18s", "kernel");
  for (const auto* s : sets) std::printf("  %14s", s->name);
  std::printf("\n");
  double scalar_hist_lut = 0.0;
  double best_hist_lut = 1e100;
  std::string best_name = "scalar";
  std::vector<std::vector<double>> times(
      cases.size(), std::vector<double>(sets.size(), 0.0));
  for (std::size_t c = 0; c < cases.size(); ++c) {
    std::printf("%-18s", cases[c].name);
    for (std::size_t s = 0; s < sets.size(); ++s) {
      const double per_call =
          time_per_call(reps, [&] { cases[c].run(*sets[s]); });
      times[c][s] = per_call;
      const double mpix = static_cast<double>(cases[c].pixels) / per_call /
                          1e6;
      std::printf("  %7.0f Mpix/s", mpix);
      records.push_back({"kernel_dispatch",
                         std::string(cases[c].name) + "/" +
                             std::to_string(size) + "x" +
                             std::to_string(size),
                         per_call * 1e9, mpix, sets[s]->name});
    }
    std::printf("\n");
  }
  std::printf("\nspeedup vs scalar:\n");
  std::printf("%-18s", "kernel");
  for (const auto* s : sets) std::printf("  %8s", s->name);
  std::printf("\n");
  for (std::size_t c = 0; c < cases.size(); ++c) {
    std::printf("%-18s", cases[c].name);
    for (std::size_t s = 0; s < sets.size(); ++s) {
      std::printf("  %7.2fx", times[c][0] / times[c][s]);
    }
    std::printf("\n");
  }

  // The headline pair: histogram accumulation + LUT apply (cases 0, 1).
  for (std::size_t s = 0; s < sets.size(); ++s) {
    const double combined = times[0][s] + times[1][s];
    if (s == 0) scalar_hist_lut = combined;
    if (combined < best_hist_lut) {
      best_hist_lut = combined;
      best_name = sets[s]->name;
    }
  }
  const double combined_speedup = scalar_hist_lut / best_hist_lut;
  std::printf("\nhistogram+LUT combined: best backend %s, %.2fx vs scalar\n",
              best_name.c_str(), combined_speedup);
  records.push_back({"kernel_dispatch", "histogram+lut_combined",
                     best_hist_lut * 1e9,
                     2.0 * static_cast<double>(n) / best_hist_lut / 1e6,
                     best_name});

  // ------------------------------------------------------------ parity
  // Spot-check on the bench frame: every backend's integer outputs must
  // equal scalar's exactly (the fuzz test in tests/ is the exhaustive
  // version of this).
  std::size_t mismatches = 0;
  {
    std::vector<std::uint8_t> ref8(n);
    std::uint64_t ref_counts[256];
    std::memset(ref_counts, 0, sizeof(ref_counts));
    kernels::scalar_kernels().histogram_u8(frame.pixels().data(), n,
                                           ref_counts);
    kernels::scalar_kernels().lut_apply_u8(frame.pixels().data(), n, lut8,
                                           ref8.data());
    std::vector<std::uint8_t> ref_rgb(3 * n);
    kernels::scalar_kernels().lut_apply_rgb8(rgb.data().data(), n, lut8,
                                             ref_rgb.data());
    std::vector<std::uint64_t> ref_counts16(kDeepLevels, 0);
    std::vector<std::uint16_t> ref16(n);
    kernels::scalar_kernels().histogram_u16(frame16.pixels().data(), n,
                                            ref_counts16.data());
    kernels::scalar_kernels().lut_apply_u16(frame16.pixels().data(), n,
                                            lut16.data(), ref16.data());
    const std::uint64_t ref_sum16 =
        kernels::scalar_kernels().sum_u16(frame16.pixels().data(), n);
    for (const auto* s : sets) {
      std::memset(counts, 0, sizeof(counts));
      s->histogram_u8(frame.pixels().data(), n, counts);
      if (std::memcmp(counts, ref_counts, sizeof(counts)) != 0) ++mismatches;
      s->lut_apply_u8(frame.pixels().data(), n, lut8, out8.data());
      if (std::memcmp(out8.data(), ref8.data(), n) != 0) ++mismatches;
      s->lut_apply_rgb8(rgb.data().data(), n, lut8, out8rgb.data());
      if (std::memcmp(out8rgb.data(), ref_rgb.data(), 3 * n) != 0) {
        ++mismatches;
      }
      std::memset(counts16.data(), 0,
                  counts16.size() * sizeof(std::uint64_t));
      s->histogram_u16(frame16.pixels().data(), n, counts16.data());
      if (std::memcmp(counts16.data(), ref_counts16.data(),
                      counts16.size() * sizeof(std::uint64_t)) != 0) {
        ++mismatches;
      }
      s->lut_apply_u16(frame16.pixels().data(), n, lut16.data(),
                       out16.data());
      if (std::memcmp(out16.data(), ref16.data(),
                      n * sizeof(std::uint16_t)) != 0) {
        ++mismatches;
      }
      if (s->sum_u16(frame16.pixels().data(), n) != ref_sum16) ++mismatches;
    }
  }
  std::printf("backend parity on bench frame: %s\n",
              mismatches == 0 ? "bit-identical" : "MISMATCH");

  write_bench_json("BENCH_kernels.json", records);

  if (mismatches != 0) return 1;
  if (min_combined > 0.0 && combined_speedup < min_combined) {
    std::fprintf(stderr,
                 "FAIL: combined histogram+LUT speedup %.2fx is below the "
                 "required %.2fx\n",
                 combined_speedup, min_combined);
    return 1;
  }
  (void)sink;
  return 0;
}
