// Matrix-dynamics bench: HEBS on a physically scanned panel.
//
// The transfer-function analysis assumes cells instantly display their
// target transmittance; a real panel scans rows sequentially, holds
// charge on storage capacitors and relaxes with the LC response (§2,
// Fig. 1b/1c).  This bench plays the synthetic video clip through the
// TFT matrix under three configurations and reports the *extra*
// distortion the electrical dynamics add on top of the transform — and
// confirms that ladder reprogramming (HEBS's realization) adds no scan
// cost: the same one-frame-per-refresh schedule drives both paths.
#include <cstdio>

#include "bench_common.h"
#include "hebs/advanced/core.h"
#include "hebs/advanced/display.h"
#include "hebs/advanced/quality.h"

int main() {
  using namespace hebs;
  bench::print_header("Matrix dynamics — HEBS on a scanned TFT panel",
                      "§2 / Fig. 1b-1c electrical substrate");

  const auto clip = image::make_video_clip(16, bench::kImageSize);
  const quality::DistortionOptions metric;

  auto csv = bench::open_csv("matrix_dynamics.csv");
  csv.write_row({"lc_response", "mean_transform_distortion",
                 "mean_panel_distortion", "dynamics_penalty"});
  util::ConsoleTable table({"LC response", "transform-only distortion %",
                            "panel distortion %", "dynamics penalty %"});

  for (double lc : {1.0, 0.8, 0.4}) {
    display::TftMatrixOptions mopts;
    mopts.lc_response = lc;
    display::TftMatrix matrix(bench::kImageSize, bench::kImageSize, mopts);

    double transform_distortion = 0.0;
    double panel_distortion = 0.0;
    for (const auto& frame : clip) {
      const auto r = core::hebs_exact(frame, 10.0, {}, bench::platform());
      // Program the ladder for this frame and scan once.
      display::HierarchicalLadder ladder;
      ladder.program(r.lambda, r.point.beta);
      matrix.scan_frame(frame, ladder.transfer());
      const auto emitted = matrix.emitted(r.point.beta);
      const auto reference = image::FloatImage::from_gray(frame);
      transform_distortion += r.evaluation.distortion_percent;
      panel_distortion +=
          quality::distortion_percent(reference, emitted, metric);
    }
    const auto n = static_cast<double>(clip.size());
    const double penalty =
        (panel_distortion - transform_distortion) / n;
    table.add_row({util::ConsoleTable::num(lc, 1),
                   util::ConsoleTable::num(transform_distortion / n, 1),
                   util::ConsoleTable::num(panel_distortion / n, 1),
                   util::ConsoleTable::num(penalty, 1)});
    csv.write_row({util::CsvWriter::num(lc),
                   util::CsvWriter::num(transform_distortion / n),
                   util::CsvWriter::num(panel_distortion / n),
                   util::CsvWriter::num(penalty)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nReading: with a fast LC (response 1.0) the scanned panel\n"
              "reproduces the transform-level distortion almost exactly —\n"
              "the Eq. 1b analysis is sound; slower crystals add a\n"
              "ghosting penalty that is a property of the panel, not of\n"
              "HEBS (it affects the unscaled display identically).\n"
              "CSV: %s/matrix_dynamics.csv\n",
              bench::results_dir().c_str());
  return 0;
}
