// Fault-injection soak harness (DESIGN.md §14).
//
// Drives every throwing fault point through the engine's batch and
// stream paths — gray and color — at 1, 2 and 8 threads with a
// *persistent* spec (count=0: the point re-fires on every hit, so the
// containment handlers themselves are exercised under sustained fire),
// plus a deadline-soak leg under the stage-latency stall point.  After
// every leg the harness checks the containment contract:
//
//   - the call returned (nothing escaped, nothing crashed),
//   - every frame is accounted for (results and fault records align),
//   - the degraded count matches the registry's kFramesDegraded delta,
//   - every degraded frame carries a non-empty attribution message.
//
// Exit code 1 on any violation — deterministic (no timing thresholds),
// so CI gates on it, typically under ASan where a leaked or
// double-freed containment path would also abort the run.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hebs/advanced/core.h"
#include "hebs/advanced/obs.h"
#include "hebs/advanced/pipeline.h"

namespace {

namespace fault = hebs::util::fault;
using hebs::image::GrayImage;
using hebs::image::RgbImage;
using hebs::image::UsidId;
using hebs::pipeline::EngineOptions;
using hebs::pipeline::FrameFault;
using hebs::pipeline::PipelineEngine;

int g_violations = 0;

void check(bool ok, const std::string& what) {
  if (ok) return;
  ++g_violations;
  std::printf("  VIOLATION: %s\n", what.c_str());
}

std::vector<GrayImage> clip(int count) {
  const UsidId ids[] = {UsidId::kLena, UsidId::kPeppers, UsidId::kBaboon,
                        UsidId::kGirl, UsidId::kPout,    UsidId::kSail,
                        UsidId::kTrees, UsidId::kSplash};
  std::vector<GrayImage> frames;
  frames.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    frames.push_back(hebs::image::make_usid(ids[i % 8], 48));
  }
  return frames;
}

std::vector<RgbImage> color_clip(int count) {
  std::vector<RgbImage> frames;
  frames.reserve(static_cast<std::size_t>(count));
  for (const auto& g : clip(count)) {
    frames.push_back(RgbImage::from_gray(g));
  }
  return frames;
}

/// Verifies one leg's fault records against the counter registry.
void audit(const char* leg, const std::vector<FrameFault>& faults,
           std::size_t frames, const hebs::obs::CounterSnapshot& before) {
  check(faults.size() == frames,
        std::string(leg) + ": fault records misaligned");
  std::size_t degraded = 0;
  for (const FrameFault& f : faults) {
    if (!f.degraded) continue;
    ++degraded;
    check(!f.message.empty(),
          std::string(leg) + ": degraded frame with empty attribution");
  }
  const auto d = hebs::obs::snapshot_counters().delta_since(before);
  check(d[hebs::obs::Counter::kFramesDegraded] == degraded,
        std::string(leg) + ": kFramesDegraded != degraded records");
  std::printf("  %-28s %2zu/%zu frames degraded\n", leg, degraded, frames);
}

void soak_point(const char* spec) {
  const auto frames = clip(8);
  const auto rgb = color_clip(6);
  for (int threads : {1, 2, 8}) {
    std::printf("%s @ %d threads\n", spec, threads);
    EngineOptions opts;
    opts.num_threads = threads;
    hebs::core::VideoOptions vopts;
    vopts.num_threads = threads;

    std::string error;
    std::vector<FrameFault> faults;

    // Batch.
    fault::clear_all();
    check(fault::install_from_string(spec, &error), error);
    auto before = hebs::obs::snapshot_counters();
    PipelineEngine(opts, hebs::bench::platform())
        .process_batch(frames, 10.0, &faults);
    fault::clear_all();
    audit("batch", faults, frames.size(), before);

    // Batch color.
    check(fault::install_from_string(spec, &error), error);
    before = hebs::obs::snapshot_counters();
    PipelineEngine(opts, hebs::bench::platform())
        .process_batch_color(rgb, 10.0, hebs::core::ColorMode::kSharedCurve,
                             &faults);
    fault::clear_all();
    audit("batch-color", faults, rgb.size(), before);

    // Stream (temporal on: the quarantine path rebuilds reuse chains).
    check(fault::install_from_string(spec, &error), error);
    before = hebs::obs::snapshot_counters();
    PipelineEngine(opts, hebs::bench::platform())
        .process_stream(frames, vopts, &faults);
    fault::clear_all();
    audit("stream", faults, frames.size(), before);

    // Stream color.
    check(fault::install_from_string(spec, &error), error);
    before = hebs::obs::snapshot_counters();
    PipelineEngine(opts, hebs::bench::platform())
        .process_stream_color(rgb, vopts, hebs::core::ColorMode::kSharedCurve,
                              &faults);
    fault::clear_all();
    audit("stream-color", faults, rgb.size(), before);
  }
}

void soak_deadline() {
  const auto frames = clip(4);
  std::printf("stage-latency + %dus deadline\n", 500);
  std::string error;
  std::vector<FrameFault> faults;
  fault::clear_all();
  check(fault::install_from_string("stage-latency:stall_us=1500,count=0",
                                   &error),
        error);
  EngineOptions opts;
  opts.num_threads = 2;
  opts.frame_deadline_us = 500;
  const auto before = hebs::obs::snapshot_counters();
  PipelineEngine(opts, hebs::bench::platform())
      .process_batch(frames, 10.0, &faults);
  fault::clear_all();
  audit("batch-deadline", faults, frames.size(), before);
  std::size_t deadline_faults = 0;
  for (const FrameFault& f : faults) deadline_faults += f.deadline ? 1 : 0;
  const auto d = hebs::obs::snapshot_counters().delta_since(before);
  check(d[hebs::obs::Counter::kDeadlineMiss] == deadline_faults,
        "kDeadlineMiss != deadline fault records");
}

}  // namespace

int main() {
  hebs::bench::print_header(
      "Fault-injection soak",
      "DESIGN.md §14 containment contract under sustained fire");

  // Persistent specs: every 3rd hit fires, forever.  A frame can fault
  // repeatedly across its probes; containment must hold every time.
  soak_point("worker-task:first=2,every=3,count=0");
  soak_point("frame-corrupt:first=2,every=3,count=0");
  soak_point("pool-alloc:first=2,every=5,count=0");
  soak_deadline();

  fault::clear_all();
  if (g_violations != 0) {
    std::printf("\nFAIL: %d containment violation(s)\n", g_violations);
    return 1;
  }
  std::printf("\nOK: containment contract held on every leg\n");
  return 0;
}
