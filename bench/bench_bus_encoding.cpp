// Reproduces the related-work data points of §1's "first class" of LCD
// power techniques: display-interface bus encoding.
//
//  * ref [2] (chromatic encoding) reports ~75% transition reduction on
//    the DVI bus by exploiting spatial locality;
//  * ref [3] (limited intra-word transition codes) reports >60% average
//    energy saving where adjacent-wire coupling dominates, as in LCD
//    column-driver interfaces.
//
// The bench transmits the benchmark album through each encoder under
// two cost models — switching-dominated (λ = 0.5, DVI-like parallel
// bus) and coupling-dominated (λ = 4, deep-submicron adjacent-wire
// capacitance ≈ 4× line-to-ground) — and reports savings versus raw
// transmission.  Interface savings compose with HEBS's backlight
// savings: the two §1 technique classes are orthogonal.
#include <cstdio>

#include "bench_common.h"
#include "hebs/advanced/bus.h"
#include "hebs/advanced/core.h"
#include "hebs/advanced/histogram.h"

int main() {
  using namespace hebs;
  bench::print_header("Bus encoding — the other technique class (§1)",
                      "refs [2] (chromatic) and [3] (LIWT) data points");

  const auto album = image::usid_album(bench::kImageSize);
  const bus::RawEncoder raw;
  const bus::GrayCodeEncoder gray;
  const bus::DifferentialEncoder differential;
  const bus::BusInvertEncoder businvert;

  auto csv = bench::open_csv("bus_encoding.csv");
  csv.write_row({"encoder", "mean_saving_switching_percent",
                 "mean_saving_coupling_percent"});
  util::ConsoleTable table({"encoder", "saving % (switching, λ=0.5)",
                            "saving % (coupling, λ=4)"});

  struct Tally {
    const char* label;
    double switching = 0.0;
    double coupling = 0.0;
  };
  Tally tallies[] = {{"gray-code (ref [2] spirit)"},
                     {"differential"},
                     {"bus-invert"},
                     {"liwt (ref [3] spirit)"}};

  for (const auto& named : album) {
    // LIWT trains its code table on the image's own histogram (the
    // profile-driven variant of ref [3]).
    const auto hist = histogram::Histogram::from_image(named.image);
    std::vector<std::uint64_t> freq(256);
    for (int i = 0; i < 256; ++i) {
      freq[static_cast<std::size_t>(i)] = hist.count(i);
    }
    const bus::LiwtEncoder liwt(freq);

    const auto base = bus::transmit(named.image, raw);
    const bus::BusEncoder* encoders[] = {&gray, &differential, &businvert,
                                         &liwt};
    for (std::size_t e = 0; e < 4; ++e) {
      const auto stats = bus::transmit(named.image, *encoders[e]);
      tallies[e].switching +=
          100.0 * (1.0 - stats.energy(0.5) / base.energy(0.5));
      tallies[e].coupling +=
          100.0 * (1.0 - stats.energy(4.0) / base.energy(4.0));
    }
  }

  const auto n = static_cast<double>(album.size());
  for (const auto& t : tallies) {
    table.add_row({t.label, util::ConsoleTable::num(t.switching / n, 1),
                   util::ConsoleTable::num(t.coupling / n, 1)});
    csv.write_row({t.label, util::CsvWriter::num(t.switching / n),
                   util::CsvWriter::num(t.coupling / n)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nShape checks: the locality-exploiting codes (gray,\n"
              "differential) win under the switching-dominated model\n"
              "(ref [2] reports ~75%% transition cuts on DVI *video*,\n"
              "which is far more redundant than synthetic stills); the\n"
              "limited-intra-word code wins when coupling dominates\n"
              "(ref [3] reports >60%%).  Bus savings multiply with\n"
              "HEBS's backlight savings.\n"
              "CSV: %s/bus_encoding.csv\n",
              bench::results_dir().c_str());
  return 0;
}
