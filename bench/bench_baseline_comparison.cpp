// Reproduces the paper's headline comparison (§1, §5.2): HEBS versus the
// DLS [4] and CBCS [5] baselines at equal measured distortion.
//
// The paper reports "an additional power saving of 15% compared to the
// best of the existing strategies".  All policies are evaluated with the
// same perceptual metric (UIQI over HVS), the same power models, and the
// same budget, so wins come from the transform family alone.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "hebs/advanced/baseline.h"
#include "hebs/advanced/core.h"

int main() {
  using namespace hebs;
  bench::print_header("Baseline comparison — HEBS vs DLS vs CBCS",
                      "Iranli et al., DATE'05, §1 claim 4 and §5.2");

  const auto album = image::usid_album(bench::kImageSize);
  const double budget = 10.0;

  const core::HebsPolicy hebs_policy;
  const baseline::DlsPolicy dls_b(baseline::DlsMode::kBrightnessCompensation);
  const baseline::DlsPolicy dls_c(baseline::DlsMode::kContrastEnhancement);
  const baseline::CbcsPolicy cbcs;
  const std::vector<const core::DbsPolicy*> policies = {&hebs_policy, &dls_b,
                                                        &dls_c, &cbcs};

  auto csv = bench::open_csv("baseline_comparison.csv");
  csv.write_row({"image", "HEBS", "DLS-brightness", "DLS-contrast", "CBCS"});
  util::ConsoleTable table(
      {"Image", "HEBS %", "DLS-bright %", "DLS-contr %", "CBCS %"});

  std::vector<double> totals(policies.size(), 0.0);
  for (const auto& named : album) {
    std::vector<std::string> row = {named.name};
    std::vector<std::string> csv_row = {named.name};
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const auto point = policies[p]->choose(named.image, budget);
      const auto eval = core::evaluate_operating_point(
          named.image, point, bench::platform());
      totals[p] += eval.saving_percent;
      row.push_back(util::ConsoleTable::num(eval.saving_percent));
      csv_row.push_back(util::CsvWriter::num(eval.saving_percent));
    }
    table.add_row(row);
    csv.write_row(csv_row);
  }
  table.add_separator();
  std::vector<std::string> avg_row = {"Average"};
  std::vector<std::string> avg_csv = {"Average"};
  for (double& t : totals) {
    t /= static_cast<double>(album.size());
  }
  for (double t : totals) {
    avg_row.push_back(util::ConsoleTable::num(t));
    avg_csv.push_back(util::CsvWriter::num(t));
  }
  table.add_row(avg_row);
  csv.write_row(avg_csv);
  std::printf("%s", table.to_string().c_str());

  const double best_baseline =
      std::max({totals[1], totals[2], totals[3]});
  std::printf("\nAt D_max = %.0f%%: HEBS average saving %.2f%%, best\n"
              "baseline %.2f%% -> HEBS advantage %+.2f points.\n"
              "Paper's claim: ~15 points over the best prior approach.\n"
              "CSV: %s/baseline_comparison.csv\n",
              budget, totals[0], best_baseline, totals[0] - best_baseline,
              bench::results_dir().c_str());
  return 0;
}
