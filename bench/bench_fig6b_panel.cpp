// Regenerates Figure 6b: TFT-LCD panel power versus pixel transmittance,
// with the quadratic fit of Eq. 12.
//
// Flow mirrors the paper's §5.1b: measure the panel on the synthetic lab
// bench, regress a quadratic, compare with the published coefficients
// (a=0.02449, b=0.04984, c=0.993).
#include <cstdio>

#include "bench_common.h"
#include "hebs/advanced/power.h"

int main() {
  using namespace hebs;
  bench::print_header("Figure 6b — panel power vs. transmittance",
                      "Iranli et al., DATE'05, Fig. 6b / Eq. 12");

  power::BenchOptions bench_opts;
  bench_opts.points = 30;
  bench_opts.noise_watts = 0.002;
  const auto samples = power::measure_panel(bench_opts);

  std::vector<double> ts;
  std::vector<double> watts;
  power::split_samples(samples, ts, watts);
  const auto fitted = power::TftPanelModel::fit(ts, watts);
  const auto model = power::TftPanelModel::lp064v1();

  auto csv = bench::open_csv("fig6b_panel.csv");
  csv.write_row({"transmittance", "measured_watts", "fitted_watts",
                 "paper_watts"});
  util::ConsoleTable table(
      {"transmittance", "measured W", "quadratic fit W", "paper model W"});
  for (const auto& s : samples) {
    table.add_row({util::ConsoleTable::num(s.x, 3),
                   util::ConsoleTable::num(s.y, 4),
                   util::ConsoleTable::num(fitted.pixel_power(s.x), 4),
                   util::ConsoleTable::num(model.pixel_power(s.x), 4)});
    csv.write_row({util::CsvWriter::num(s.x), util::CsvWriter::num(s.y),
                   util::CsvWriter::num(fitted.pixel_power(s.x)),
                   util::CsvWriter::num(model.pixel_power(s.x))});
  }
  std::printf("%s", table.to_string().c_str());

  const auto& fc = fitted.coefficients();
  const auto& pc = model.coefficients();
  std::printf("\nRecovered vs published coefficients (Eq. 12):\n");
  std::printf("  a : %8.5f (paper %8.5f)\n", fc.a, pc.a);
  std::printf("  b : %8.5f (paper %8.5f)\n", fc.b, pc.b);
  std::printf("  c : %8.5f (paper %8.5f)\n", fc.c, pc.c);
  std::printf("\nShape check: the panel swing across the whole\n"
              "transmittance range (~%.3f W) is tiny compared to the\n"
              "CCFL swing (~2.1 W) — §5.1b's justification for ignoring\n"
              "it in first-order analysis.\n"
              "CSV: %s/fig6b_panel.csv\n",
              model.pixel_power(1.0) - model.pixel_power(0.0),
              bench::results_dir().c_str());
  return 0;
}
