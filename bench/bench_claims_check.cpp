// Checks the paper's headline numeric claims end to end.
//
//  * Abstract: "about 45% power saving with an effective distortion rate
//    of 5% and 65% power saving for a 20% distortion rate".
//  * §5.2: "average power saving of 58% ... for mere distortion level of
//    10%" (Table 1 average row says 56.16%).
//  * §1 advantage 4: "an additional power saving of 15% compared to the
//    best of the existing strategies ... constitutes a total additional
//    system power saving of 3% in active mode" (SmartBadge profile of
//    ref [1]), which we extend to battery runtime.
#include <cstdio>

#include "bench_common.h"
#include "hebs/advanced/baseline.h"
#include "hebs/advanced/core.h"
#include "hebs/advanced/power.h"

int main() {
  using namespace hebs;
  bench::print_header("Claims check — abstract and §1/§5.2 numbers",
                      "Iranli et al., DATE'05, Abstract, §1, §5.2");

  const auto album = image::usid_album(bench::kImageSize);
  auto csv = bench::open_csv("claims_check.csv");
  csv.write_row({"claim", "paper", "measured"});

  // Average savings at the abstract's budgets.
  double avg[3] = {0.0, 0.0, 0.0};
  const double budgets[3] = {5.0, 10.0, 20.0};
  for (const auto& named : album) {
    for (int b = 0; b < 3; ++b) {
      avg[b] += core::hebs_exact(named.image, budgets[b], {},
                                 bench::platform())
                    .evaluation.saving_percent;
    }
  }
  for (double& a : avg) a /= static_cast<double>(album.size());

  util::ConsoleTable table({"Claim", "Paper", "Measured"});
  table.add_row({"Avg saving @ D=5%", "~45%",
                 util::ConsoleTable::num(avg[0]) + "%"});
  table.add_row({"Avg saving @ D=10%", "~58% (Table 1: 56.16%)",
                 util::ConsoleTable::num(avg[1]) + "%"});
  table.add_row({"Avg saving @ D=20%", "~65%",
                 util::ConsoleTable::num(avg[2]) + "%"});
  csv.write_row({"avg_saving_d5", "45", util::CsvWriter::num(avg[0])});
  csv.write_row({"avg_saving_d10", "58", util::CsvWriter::num(avg[1])});
  csv.write_row({"avg_saving_d20", "65", util::CsvWriter::num(avg[2])});

  // HEBS advantage over the best baseline at 10%.
  const core::HebsPolicy hebs_policy;
  const baseline::DlsPolicy dls(baseline::DlsMode::kContrastEnhancement);
  const baseline::CbcsPolicy cbcs;
  double hebs_avg = 0.0;
  double dls_avg = 0.0;
  double cbcs_avg = 0.0;
  for (const auto& named : album) {
    hebs_avg += core::evaluate_operating_point(
                    named.image, hebs_policy.choose(named.image, 10.0),
                    bench::platform())
                    .saving_percent;
    dls_avg += core::evaluate_operating_point(
                   named.image, dls.choose(named.image, 10.0),
                   bench::platform())
                   .saving_percent;
    cbcs_avg += core::evaluate_operating_point(
                    named.image, cbcs.choose(named.image, 10.0),
                    bench::platform())
                    .saving_percent;
  }
  hebs_avg /= static_cast<double>(album.size());
  dls_avg /= static_cast<double>(album.size());
  cbcs_avg /= static_cast<double>(album.size());
  const double advantage = hebs_avg - std::max(dls_avg, cbcs_avg);
  table.add_row({"Advantage vs best baseline @ D=10%", "~15 points",
                 util::ConsoleTable::num(advantage) + " points"});
  csv.write_row({"advantage_points", "15", util::CsvWriter::num(advantage)});

  // System-level saving of that advantage (SmartBadge active mode).
  const auto profile = power::SystemPowerProfile::smartbadge();
  const double system_extra = power::system_saving_percent(
      profile, power::SystemMode::kActive, advantage);
  table.add_row({"System-level extra saving (active)", "~3%",
                 util::ConsoleTable::num(system_extra) + "%"});
  csv.write_row({"system_extra_percent", "3",
                 util::CsvWriter::num(system_extra)});

  // Battery runtime extension for a handheld: the LCD draws ~28.6% of a
  // 3.65 W-display system; model a 12 Wh battery at that total draw.
  const double display_before =
      bench::platform().frame_power(album[0].image, 1.0).total();
  const double system_before =
      display_before / profile.display_fraction(power::SystemMode::kActive);
  const double system_after =
      system_before - display_before * hebs_avg / 100.0;
  const power::BatteryModel battery(12.0, system_before, 1.1);
  const double extension =
      battery.runtime_extension_percent(system_before, system_after);
  table.add_row({"Battery runtime extension @ D=10%", "(not reported)",
                 util::ConsoleTable::num(extension) + "%"});
  csv.write_row({"battery_extension_percent", "",
                 util::CsvWriter::num(extension)});

  std::printf("%s", table.to_string().c_str());
  std::printf("\nCSV: %s/claims_check.csv\n", bench::results_dir().c_str());
  return 0;
}
