// Per-frame latency distribution for the exact-search decision path.
//
// Throughput benches (bench_pipeline_throughput) measure frames/second
// over a batch, which hides exactly the number an interactive display
// controller cares about: how long ONE cold frame takes from raster to
// decision.  This bench times every frame of a photo/gradient/flat mix
// individually and reports p50/p99 per configuration:
//
//   cold-1t         engine, 1 thread, coarse-to-fine search (default)
//   cold-2t         engine, 2 threads (intra-frame row parallelism)
//   cold-8t         engine, 8 threads
//   cold-1t-bisect  engine, 1 thread, coarse_search off (the frozen
//                   oracle bisection -- the before picture)
//   warm-1t         streaming steady state: marginal cost per duplicate
//                   frame under the temporal-coherence fast path
//
// Per-frame samples come from the observability layer's span tracer,
// not ad-hoc timers: every sample is the duration of the engine's own
// kFrame span (plus the flicker post-stage span for the streaming
// config), so this bench measures exactly what a trace viewer shows.
// Counter deltas add the search depth per configuration.
//
// Records merge into BENCH_pipeline.json (other benches' records are
// preserved) as {"bench": "frame_latency", "config", "p50_ns",
// "p99_ns", "mpix_per_s", "backend", "range_probes_per_frame",
// "reuse_byte_identical", "reuse_delta_refresh", "reuse_cold"}.
//
// Flags:
//   --passes=N        timing passes over the mix (default 4)
//   --min-speedup=X   CI gate: fail unless p50(cold-1t-bisect) /
//                     p50(cold-1t) >= X (default: no gate)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hebs/advanced/core.h"
#include "hebs/advanced/kernels.h"
#include "hebs/advanced/obs.h"
#include "hebs/advanced/pipeline.h"

namespace {

using namespace hebs;

constexpr double kBudget = 10.0;

struct MixFrame {
  std::string name;
  image::GrayImage image;
};

/// 24 frames, 8 per class.  Photos exercise the full search depth;
/// gradients have smooth well-spread histograms (typical UI/video
/// content); flats are the best case every adaptive-backlight paper
/// leads with (native range ~0, the search collapses immediately).
std::vector<MixFrame> latency_mix(int size) {
  std::vector<MixFrame> mix;
  const auto album = image::usid_album(size);
  for (std::size_t i = 0; i < album.size() && mix.size() < 8; ++i) {
    mix.push_back({"photo:" + album[i].name, album[i].image});
  }
  const auto gradient = [&](const std::string& name, auto&& draw) {
    image::GrayImage img(size, size);
    draw(img);
    mix.push_back({"gradient:" + name, std::move(img)});
  };
  gradient("h-full", [](auto& g) { image::gradient_h(g, 0.0, 1.0); });
  gradient("h-mid", [](auto& g) { image::gradient_h(g, 0.2, 0.9); });
  gradient("v-full", [](auto& g) { image::gradient_v(g, 0.0, 1.0); });
  gradient("v-dim", [](auto& g) { image::gradient_v(g, 0.1, 0.6); });
  gradient("radial", [&](auto& g) {
    image::gradient_radial(g, size / 2.0, size / 2.0, size * 0.7, 1.0, 0.0);
  });
  gradient("radial-off", [&](auto& g) {
    image::gradient_radial(g, size / 3.0, size / 3.0, size * 0.9, 0.8, 0.1);
  });
  gradient("h-rev", [](auto& g) { image::gradient_h(g, 1.0, 0.0); });
  gradient("v-vignette", [&](auto& g) {
    image::gradient_v(g, 0.3, 1.0);
    image::vignette(g, 0.6);
  });
  for (const double v : {0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9, 1.0}) {
    image::GrayImage img(size, size);
    image::fill_rect(img, 0, 0, size, size, v);
    mix.push_back({"flat:" + std::to_string(v).substr(0, 4),
                   std::move(img)});
  }
  return mix;
}

double percentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

/// Counter deltas a sampling run attributes to its records.
struct RunCounters {
  double range_probes_per_frame = 0.0;
  double reuse_ident = 0.0;
  double reuse_refresh = 0.0;
  double reuse_cold = 0.0;
};

/// Times each frame of the mix through a fresh single-frame
/// process_batch call: histogram, search and render all run cold, with
/// idle workers (if any) fanning the frame's own row loops.  Samples
/// are the durations of the engine's kFrame spans, in call order.
std::vector<double> cold_samples(const std::vector<MixFrame>& mix,
                                 int threads, bool coarse, int passes,
                                 RunCounters* counters) {
  pipeline::EngineOptions opts;
  opts.num_threads = threads;
  opts.hebs.coarse_search = coarse;
  pipeline::PipelineEngine engine(opts);
  obs::clear_trace();
  const auto before = obs::snapshot_counters();
  for (int pass = 0; pass < passes; ++pass) {
    for (const auto& frame : mix) {
      const std::span<const image::GrayImage> one(&frame.image, 1);
      const auto result = engine.process_batch(one, kBudget);
      if (result.empty()) std::exit(2);  // keep the call observable
    }
  }
  const auto delta = obs::snapshot_counters().delta_since(before);
  std::vector<double> samples;
  samples.reserve(mix.size() * static_cast<std::size_t>(passes));
  for (const obs::CollectedSpan& s : obs::collect_trace()) {
    if (s.span == obs::Span::kFrame) {
      samples.push_back(static_cast<double>(s.dur_ns));
    }
  }
  if (samples.size() != mix.size() * static_cast<std::size_t>(passes)) {
    std::fprintf(stderr,
                 "FAIL: expected %zu kFrame spans, collected %zu "
                 "(dropped %llu)\n",
                 mix.size() * static_cast<std::size_t>(passes),
                 samples.size(),
                 static_cast<unsigned long long>(obs::dropped_spans()));
    std::exit(2);
  }
  if (counters != nullptr) {
    counters->range_probes_per_frame =
        static_cast<double>(delta[obs::Counter::kRangeProbes]) /
        static_cast<double>(samples.size());
  }
  return samples;
}

/// Streaming steady state: runs a clip of `kReps` duplicates of each
/// frame and reports the mean warm per-frame cost — the duration of a
/// duplicate frame's kFrame span plus its flicker post-stage span,
/// excluding the cold head (span arg = frame index) -- what a static
/// scene costs per frame once the temporal fast path is warm.
std::vector<double> warm_samples(const std::vector<MixFrame>& mix,
                                 int passes, RunCounters* counters) {
  constexpr int kReps = 17;
  pipeline::EngineOptions opts;
  opts.num_threads = 1;
  pipeline::PipelineEngine engine(opts);
  core::VideoOptions vopts;
  vopts.d_max_percent = kBudget;
  const auto before = obs::snapshot_counters();
  std::vector<double> samples;
  samples.reserve(mix.size() * static_cast<std::size_t>(passes));
  for (int pass = 0; pass < passes; ++pass) {
    for (const auto& frame : mix) {
      const std::vector<image::GrayImage> clip(kReps, frame.image);
      obs::clear_trace();
      engine.process_stream(clip, vopts);
      double warm_ns = 0.0;
      int warm_frames = 0;
      for (const obs::CollectedSpan& s : obs::collect_trace()) {
        if (s.arg == 0) continue;  // the cold head frame
        if (s.span == obs::Span::kFrame) {
          warm_ns += static_cast<double>(s.dur_ns);
          ++warm_frames;
        } else if (s.span == obs::Span::kFlickerPost) {
          warm_ns += static_cast<double>(s.dur_ns);
        }
      }
      if (warm_frames != kReps - 1) {
        std::fprintf(stderr, "FAIL: expected %d warm kFrame spans, got %d\n",
                     kReps - 1, warm_frames);
        std::exit(2);
      }
      samples.push_back(warm_ns / warm_frames);
    }
  }
  const auto delta = obs::snapshot_counters().delta_since(before);
  if (counters != nullptr) {
    const auto frames = static_cast<double>(samples.size()) * kReps;
    counters->range_probes_per_frame =
        static_cast<double>(delta[obs::Counter::kRangeProbes]) / frames;
    counters->reuse_ident = static_cast<double>(
        delta[obs::Counter::kTemporalByteIdentical]);
    counters->reuse_refresh =
        static_cast<double>(delta[obs::Counter::kTemporalDeltaRefresh]);
    counters->reuse_cold =
        static_cast<double>(delta[obs::Counter::kTemporalCold]);
  }
  return samples;
}

}  // namespace

int main(int argc, char** argv) {
  int passes = 4;
  double min_speedup = 0.0;
  bool per_frame = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--passes=", 9) == 0) {
      passes = std::max(1, std::atoi(arg + 9));
    } else if (std::strncmp(arg, "--min-speedup=", 14) == 0) {
      min_speedup = std::atof(arg + 14);
    } else if (std::strcmp(arg, "--per-frame") == 0) {
      per_frame = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg);
      return 2;
    }
  }

  const int size = hebs::bench::kImageSize;
  const auto mix = latency_mix(size);
  const std::string backend = hebs::kernels::active().name;
  hebs::bench::print_header(
      "Per-frame decision latency (p50/p99 over a photo/gradient/flat mix)",
      "supports the cold-frame latency budget of DESIGN.md §11");
  std::printf("mix: %zu frames (%dx%d), D_max %.0f%%, %d passes, "
              "backend %s\n\n",
              mix.size(), size, size, kBudget, passes, backend.c_str());

  // All samples below are span durations, so record for the whole run.
  obs::start_tracing();

  struct Row {
    std::string config;
    std::vector<double> samples;
    RunCounters counters;
  };
  std::vector<Row> rows;
  rows.push_back({"cold-1t", {}, {}});
  rows.back().samples = cold_samples(mix, 1, true, passes,
                                     &rows.back().counters);
  rows.push_back({"cold-2t", {}, {}});
  rows.back().samples = cold_samples(mix, 2, true, passes,
                                     &rows.back().counters);
  rows.push_back({"cold-8t", {}, {}});
  rows.back().samples = cold_samples(mix, 8, true, passes,
                                     &rows.back().counters);
  rows.push_back({"cold-1t-bisect", {}, {}});
  rows.back().samples = cold_samples(mix, 1, false, passes,
                                     &rows.back().counters);
  rows.push_back({"warm-1t", {}, {}});
  rows.back().samples = warm_samples(mix, passes, &rows.back().counters);

  obs::stop_tracing();

  std::printf("  %-16s %10s %10s %12s %14s\n", "config", "p50 (ms)",
              "p99 (ms)", "Mpix/s @p50", "probes/frame");
  std::vector<std::string> records;
  double p50_coarse = 0.0;
  double p50_bisect = 0.0;
  double p50_8t = 0.0;
  auto csv = hebs::bench::open_csv("frame_latency.csv");
  csv.write_row({"config", "p50_ns", "p99_ns", "mpix_per_s", "backend",
                 "range_probes_per_frame"});
  for (const Row& row : rows) {
    const double p50 = percentile(row.samples, 0.50);
    const double p99 = percentile(row.samples, 0.99);
    const double mpix =
        static_cast<double>(size) * size / (p50 / 1e9) / 1e6;
    std::printf("  %-16s %10.3f %10.3f %12.2f %14.1f\n", row.config.c_str(),
                p50 / 1e6, p99 / 1e6, mpix,
                row.counters.range_probes_per_frame);
    char line[384];
    std::snprintf(line, sizeof line,
                  "{\"bench\": \"frame_latency\", \"config\": \"%s\", "
                  "\"p50_ns\": %.1f, \"p99_ns\": %.1f, "
                  "\"mpix_per_s\": %.3f, \"backend\": \"%s\", "
                  "\"range_probes_per_frame\": %.2f, "
                  "\"reuse_byte_identical\": %.0f, "
                  "\"reuse_delta_refresh\": %.0f, \"reuse_cold\": %.0f}",
                  row.config.c_str(), p50, p99, mpix, backend.c_str(),
                  row.counters.range_probes_per_frame,
                  row.counters.reuse_ident, row.counters.reuse_refresh,
                  row.counters.reuse_cold);
    records.emplace_back(line);
    csv.write_row({row.config, hebs::util::CsvWriter::num(p50),
                   hebs::util::CsvWriter::num(p99),
                   hebs::util::CsvWriter::num(mpix), backend,
                   hebs::util::CsvWriter::num(
                       row.counters.range_probes_per_frame)});
    if (row.config == "cold-1t") p50_coarse = p50;
    if (row.config == "cold-1t-bisect") p50_bisect = p50;
    if (row.config == "cold-8t") p50_8t = p50;
  }
  const double speedup = p50_bisect / p50_coarse;
  std::printf("\n  coarse-search speedup (p50, 1 thread): %.2fx\n", speedup);

  if (per_frame) {
    // Attribution view: per-frame medians for the two 1-thread paths,
    // so a p50 shift is traceable to the frames that moved it.
    const auto& coarse = rows[0].samples;
    const auto& bisect = rows[3].samples;
    std::printf("\n  %-22s %12s %12s\n", "frame", "coarse (ms)",
                "bisect (ms)");
    for (std::size_t f = 0; f < mix.size(); ++f) {
      std::vector<double> a;
      std::vector<double> b;
      for (int pass = 0; pass < passes; ++pass) {
        a.push_back(coarse[static_cast<std::size_t>(pass) * mix.size() + f]);
        b.push_back(bisect[static_cast<std::size_t>(pass) * mix.size() + f]);
      }
      std::printf("  %-22s %12.3f %12.3f\n", mix[f].name.c_str(),
                  percentile(a, 0.5) / 1e6, percentile(b, 0.5) / 1e6);
    }
  }

  // Extra threads must help single-frame latency where they exist at
  // all.  On a box whose effective parallelism is 1 (CI containers) the
  // 8-thread engine degenerates to the 1-thread path plus pool wakes,
  // so only sanity-check it there instead of requiring a win.
  const int effective = hebs::pipeline::ThreadPool(8).effective_concurrency();
  if (effective > 1) {
    std::printf("  8t vs 1t (p50): %.2fx (effective parallelism %d)\n",
                p50_coarse / p50_8t, effective);
    if (p50_8t >= p50_coarse) {
      std::fprintf(stderr,
                   "FAIL: cold-8t p50 (%.3f ms) not below cold-1t p50 "
                   "(%.3f ms) with effective parallelism %d\n",
                   p50_8t / 1e6, p50_coarse / 1e6, effective);
      return 1;
    }
  } else {
    std::printf("  8t vs 1t: skipped (effective parallelism 1); "
                "8t p50 %.3f ms within 1.5x of 1t: %s\n",
                p50_8t / 1e6, p50_8t <= 1.5 * p50_coarse ? "yes" : "NO");
  }

  hebs::bench::merge_bench_json("BENCH_pipeline.json", "frame_latency",
                                records);

  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: coarse-search p50 speedup %.2fx below the "
                 "--min-speedup=%.2f gate\n",
                 speedup, min_speedup);
    return 1;
  }
  return 0;
}
