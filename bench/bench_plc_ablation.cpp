// Ablation: PLC segment budget m versus hardware-realization fidelity
// and end-to-end policy quality.
//
// DESIGN.md calls out the segment budget as the key hardware-cost knob:
// every linear segment costs one controllable voltage source in the
// Fig. 5b ladder.  Two questions are measured separately:
//
//  1. Fidelity (the paper's PLC objective, Eq. 9): how closely can an
//     m-segment Λ track the computed transformation Φ?  Reported as the
//     mean PLC MSE at a fixed mid-depth range.
//  2. End-to-end effect: run the full exact-search policy at a fixed
//     distortion budget with each m and report the album-average saving
//     — does a cheap ladder cost battery life?
#include <cstdio>

#include "bench_common.h"
#include "hebs/advanced/core.h"

int main() {
  using namespace hebs;
  bench::print_header("Ablation — PLC segment budget",
                      "Eq. 8/9 design choice (DESIGN.md ablation index)");

  const auto album = image::usid_album(bench::kImageSize);
  const int fidelity_range = 120;
  const double budget = 10.0;

  auto csv = bench::open_csv("plc_ablation.csv");
  csv.write_row({"segments", "mean_plc_mse_at_r120",
                 "mean_saving_at_d10", "mean_distortion_at_d10"});
  util::ConsoleTable table({"m", "PLC MSE @R=120", "saving % @D<=10",
                            "distortion % @D<=10"});

  for (int m : {1, 2, 4, 6, 8, 12, 16, 32}) {
    core::HebsOptions opts;
    opts.segments = m;
    double mse = 0.0;
    double saving = 0.0;
    double distortion = 0.0;
    for (const auto& named : album) {
      mse += core::hebs_at_range(named.image, fidelity_range, opts,
                                 bench::platform())
                 .plc_mse;
      const auto r =
          core::hebs_exact(named.image, budget, opts, bench::platform());
      saving += r.evaluation.saving_percent;
      distortion += r.evaluation.distortion_percent;
    }
    const auto n = static_cast<double>(album.size());
    table.add_row({std::to_string(m), util::ConsoleTable::num(mse / n, 6),
                   util::ConsoleTable::num(saving / n),
                   util::ConsoleTable::num(distortion / n)});
    csv.write_row({std::to_string(m), util::CsvWriter::num(mse / n),
                   util::CsvWriter::num(saving / n),
                   util::CsvWriter::num(distortion / n)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nReading: the PLC MSE — how faithfully the ladder can\n"
              "realize the computed transformation (the paper's Eq. 9\n"
              "objective) — falls by orders of magnitude up to m ≈ 8 and\n"
              "then flattens.  End to end, m <= 2 cannot even express an\n"
              "identity transform with clamped tails, so those ladders\n"
              "overshoot the distortion budget; from m = 4 on the budget\n"
              "is met and savings are stable — eight controllable\n"
              "sources make the Fig. 5b ladder effectively exact.\n"
              "CSV: %s/plc_ablation.csv\n",
              bench::results_dir().c_str());
  return 0;
}
