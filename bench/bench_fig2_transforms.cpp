// Regenerates Figure 2: the pixel transformation function shapes —
// identity, grayscale shift (Eq. 2a), grayscale spreading (Eq. 2b),
// single-band spreading (Eq. 3) — plus the k-band PWL transform HEBS
// produces (Fig. 3), sampled as series.
#include <cstdio>

#include "bench_common.h"
#include "hebs/advanced/core.h"
#include "hebs/advanced/transform.h"

int main() {
  using namespace hebs;
  bench::print_header("Figure 2 — pixel transformation functions",
                      "Iranli et al., DATE'05, Fig. 2 (a-d) and Fig. 3");

  const double beta = 0.7;
  const auto identity = transform::identity_curve();
  const auto shift = transform::brightness_shift_curve(beta);
  const auto spread = transform::contrast_stretch_curve(beta);
  const auto band = transform::single_band_curve(0.15, 0.85);

  // HEBS k-band transform for a representative image at range 150.
  const auto img = image::make_usid(image::UsidId::kLena, bench::kImageSize);
  const auto hebs_result =
      core::hebs_at_range(img, 150, {}, bench::platform());
  const auto& kband = hebs_result.lambda;

  auto csv = bench::open_csv("fig2_transforms.csv");
  csv.write_row({"x", "identity", "shift_eq2a", "spread_eq2b",
                 "single_band_eq3", "hebs_kband"});
  util::ConsoleTable table({"x", "identity", "shift", "spread",
                            "single-band", "HEBS k-band"});
  for (int i = 0; i <= 20; ++i) {
    const double x = i / 20.0;
    table.add_row({util::ConsoleTable::num(x, 2),
                   util::ConsoleTable::num(identity(x), 3),
                   util::ConsoleTable::num(shift(x), 3),
                   util::ConsoleTable::num(spread(x), 3),
                   util::ConsoleTable::num(band(x), 3),
                   util::ConsoleTable::num(kband(x), 3)});
    csv.write_row({util::CsvWriter::num(x), util::CsvWriter::num(identity(x)),
                   util::CsvWriter::num(shift(x)),
                   util::CsvWriter::num(spread(x)),
                   util::CsvWriter::num(band(x)),
                   util::CsvWriter::num(kband(x))});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nβ = %.2f for Eq. 2a/2b; band [0.15, 0.85] for Eq. 3.\n"
              "The HEBS k-band curve (m = %d segments) shows the flat\n"
              "bands over unpopulated gray levels that the single-band\n"
              "circuit of [5] cannot realize.\n"
              "CSV: %s/fig2_transforms.csv\n",
              beta, kband.segment_count(), bench::results_dir().c_str());
  return 0;
}
