// Ablation: distortion-metric choice (the paper's stated future work —
// "alternative distortion measures ... will be evaluated").
//
// Runs the exact-search HEBS mode under each metric at the same nominal
// budget and reports the chosen operating points.  Because the metrics
// scale differently, the interesting output is the *relative* operating
// point (range/β) each metric selects and how the perceptual metrics
// differ from plain RMSE, plus equalization-strength ablation
// (paper-pure GHE vs adaptive blend).
#include <cstdio>

#include "bench_common.h"
#include "hebs/advanced/core.h"

int main() {
  using namespace hebs;
  bench::print_header("Ablation — distortion metric & equalization strength",
                      "§6 future work; DESIGN.md ablation index");

  const auto album = image::usid_figure8_subset(bench::kImageSize);
  const double budget = 10.0;
  const quality::Metric metrics[] = {
      quality::Metric::kUiqiHvs, quality::Metric::kUiqi,
      quality::Metric::kSsim, quality::Metric::kSsimHvs,
      quality::Metric::kRmse};

  auto csv = bench::open_csv("metric_ablation.csv");
  csv.write_row({"image", "metric", "chosen_range", "beta",
                 "distortion_percent", "saving_percent"});
  util::ConsoleTable table(
      {"Image", "Metric", "range", "beta", "distortion %", "saving %"});
  for (const auto& named : album) {
    for (quality::Metric metric : metrics) {
      core::HebsOptions opts;
      opts.distortion.metric = metric;
      const auto r =
          core::hebs_exact(named.image, budget, opts, bench::platform());
      table.add_row({named.name, quality::metric_name(metric),
                     std::to_string(r.target.range()),
                     util::ConsoleTable::num(r.point.beta, 3),
                     util::ConsoleTable::num(
                         r.evaluation.distortion_percent, 1),
                     util::ConsoleTable::num(r.evaluation.saving_percent)});
      csv.write_row({named.name, quality::metric_name(metric),
                     std::to_string(r.target.range()),
                     util::CsvWriter::num(r.point.beta),
                     util::CsvWriter::num(r.evaluation.distortion_percent),
                     util::CsvWriter::num(r.evaluation.saving_percent)});
    }
  }
  std::printf("%s", table.to_string().c_str());

  // Equalization-strength ablation: paper-pure full GHE vs the adaptive
  // blend, both without concurrent scaling so the transform family is
  // the only difference.
  std::printf("\nEqualization strength (at D_max = %.0f%%, no concurrent "
              "scaling):\n",
              budget);
  util::ConsoleTable eq_table(
      {"Image", "paper-pure GHE saving %", "adaptive saving %"});
  for (const auto& named : album) {
    core::HebsOptions pure;
    pure.equalization_strength = 1.0;
    pure.concurrent_scaling = false;
    core::HebsOptions adaptive;
    adaptive.concurrent_scaling = false;
    const auto r_pure =
        core::hebs_exact(named.image, budget, pure, bench::platform());
    const auto r_ad =
        core::hebs_exact(named.image, budget, adaptive, bench::platform());
    eq_table.add_row(
        {named.name,
         util::ConsoleTable::num(r_pure.evaluation.saving_percent),
         util::ConsoleTable::num(r_ad.evaluation.saving_percent)});
  }
  std::printf("%s", eq_table.to_string().c_str());
  std::printf("\nReading: perceptual metrics (UIQI/SSIM, with HVS) permit\n"
              "deeper dimming than plain RMSE at the same nominal budget,\n"
              "because they discount imperceptible luminance shifts; the\n"
              "adaptive equalization blend dominates paper-pure GHE on\n"
              "images whose native range is narrow.\n"
              "CSV: %s/metric_ablation.csv\n",
              bench::results_dir().c_str());
  return 0;
}
