// Regenerates Table 1: power saving for the 19 USID benchmark images at
// distortion levels 5%, 10% and 20%, plus the average row.
//
// Protocol: for each image and budget, the exact-search HEBS mode picks
// the deepest operating point whose *measured* distortion stays within
// the budget; the reported saving is against the original image at full
// backlight (paper §5.2).  Paper averages for comparison:
// 45.88 / 56.16 / 64.38 percent.
#include <cstdio>

#include "bench_common.h"
#include "hebs/advanced/core.h"

namespace {

// Paper Table 1 values, for side-by-side shape comparison.
struct PaperRow {
  const char* name;
  double d5;
  double d10;
  double d20;
};
constexpr PaperRow kPaperRows[] = {
    {"Lena", 47.53, 58.18, 69.52},     {"Autumn", 45.56, 59.20, 71.53},
    {"Football", 46.62, 55.25, 65.57}, {"Peppers", 44.60, 54.24, 66.55},
    {"Greens", 45.63, 55.26, 63.58},   {"Pears", 47.51, 57.16, 64.49},
    {"Onion", 44.56, 58.21, 70.53},    {"Trees", 46.69, 54.31, 64.62},
    {"West", 48.52, 61.18, 67.50},     {"Pout", 42.57, 53.22, 59.54},
    {"Sail", 42.53, 49.18, 56.51},     {"Splash", 46.55, 57.20, 63.53},
    {"Girl", 46.55, 55.20, 62.52},     {"Baboon", 49.52, 56.10, 62.51},
    {"TreeA", 41.53, 50.18, 59.52},    {"HouseA", 45.49, 58.15, 63.48},
    {"GirlB", 45.65, 61.28, 62.59},    {"Testpat", 47.53, 58.22, 63.54},
    {"Elaine", 46.53, 55.18, 65.50},
};

}  // namespace

int main() {
  using namespace hebs;
  bench::print_header("Table 1 — Power saving vs. distortion level",
                      "Iranli et al., DATE'05, Table 1");

  const auto album = image::usid_album(bench::kImageSize);
  const core::HebsOptions opts;
  auto csv = bench::open_csv("table1_power_saving.csv");
  csv.write_row({"image", "saving_d5", "saving_d10", "saving_d20",
                 "paper_d5", "paper_d10", "paper_d20"});

  util::ConsoleTable table({"Name", "D=5% (paper)", "D=10% (paper)",
                            "D=20% (paper)"});
  double avg[3] = {0.0, 0.0, 0.0};
  const double budgets[3] = {5.0, 10.0, 20.0};
  for (std::size_t i = 0; i < album.size(); ++i) {
    double saving[3];
    for (int b = 0; b < 3; ++b) {
      const auto r = core::hebs_exact(album[i].image, budgets[b], opts,
                                      bench::platform());
      saving[b] = r.evaluation.saving_percent;
      avg[b] += saving[b];
    }
    const PaperRow& paper = kPaperRows[i];
    table.add_row(
        {album[i].name,
         util::ConsoleTable::num(saving[0]) + " (" +
             util::ConsoleTable::num(paper.d5) + ")",
         util::ConsoleTable::num(saving[1]) + " (" +
             util::ConsoleTable::num(paper.d10) + ")",
         util::ConsoleTable::num(saving[2]) + " (" +
             util::ConsoleTable::num(paper.d20) + ")"});
    csv.write_row({album[i].name, util::CsvWriter::num(saving[0]),
                   util::CsvWriter::num(saving[1]),
                   util::CsvWriter::num(saving[2]),
                   util::CsvWriter::num(paper.d5),
                   util::CsvWriter::num(paper.d10),
                   util::CsvWriter::num(paper.d20)});
  }
  for (double& a : avg) a /= static_cast<double>(album.size());
  table.add_separator();
  table.add_row({"Average",
                 util::ConsoleTable::num(avg[0]) + " (45.88)",
                 util::ConsoleTable::num(avg[1]) + " (56.16)",
                 util::ConsoleTable::num(avg[2]) + " (64.38)"});
  csv.write_row({"Average", util::CsvWriter::num(avg[0]),
                 util::CsvWriter::num(avg[1]), util::CsvWriter::num(avg[2]),
                 "45.88", "56.16", "64.38"});

  std::printf("%s", table.to_string().c_str());
  std::printf("\nShape checks: savings rise with the distortion budget;\n"
              "averages should land near the paper's 46/56/64%%.\n"
              "CSV: %s/table1_power_saving.csv\n",
              bench::results_dir().c_str());
  return 0;
}
