// Ablation: global vs local histogram equalization (§6 future work).
//
// Local (tiled, CLAHE-style) equalization allocates each region's
// contrast from its own statistics, at the cost of a spatially varying
// transform that a single reference-voltage ladder cannot realize.  This
// bench measures what that extra hardware would buy: distortion at equal
// target range (and therefore equal backlight power) for global GHE vs
// LHE with several tile counts and clip limits.
#include <cstdio>

#include "bench_common.h"
#include "hebs/advanced/core.h"
#include "hebs/advanced/quality.h"

int main() {
  using namespace hebs;
  bench::print_header("Ablation — global vs local histogram equalization",
                      "§6 future work (DESIGN.md ablation index)");

  const auto album = image::usid_album(bench::kImageSize);
  const quality::DistortionOptions metric;  // paper default UIQI+HVS

  auto csv = bench::open_csv("lhe_ablation.csv");
  csv.write_row({"range", "variant", "mean_distortion_percent"});
  util::ConsoleTable table({"range", "global GHE %", "LHE 2x2 %",
                            "LHE 4x4 %", "LHE 4x4 clip=2 %"});

  for (int range : {80, 120, 160, 200}) {
    const core::GheTarget target{0, range};
    double d_global = 0.0;
    double d_lhe2 = 0.0;
    double d_lhe4 = 0.0;
    double d_lhe4c = 0.0;
    for (const auto& named : album) {
      const auto hist =
          hebs::histogram::Histogram::from_image(named.image);
      const auto global =
          core::ghe_lut(hist, target).apply(named.image);
      d_global += quality::distortion_percent(named.image, global, metric);

      core::LheOptions t2;
      t2.tiles = 2;
      t2.clip_limit = 0.0;
      d_lhe2 += quality::distortion_percent(
          named.image, core::lhe_apply(named.image, target, t2), metric);

      core::LheOptions t4;
      t4.tiles = 4;
      t4.clip_limit = 0.0;
      d_lhe4 += quality::distortion_percent(
          named.image, core::lhe_apply(named.image, target, t4), metric);

      core::LheOptions t4c;
      t4c.tiles = 4;
      t4c.clip_limit = 2.0;
      d_lhe4c += quality::distortion_percent(
          named.image, core::lhe_apply(named.image, target, t4c), metric);
    }
    const auto n = static_cast<double>(album.size());
    table.add_row({std::to_string(range),
                   util::ConsoleTable::num(d_global / n),
                   util::ConsoleTable::num(d_lhe2 / n),
                   util::ConsoleTable::num(d_lhe4 / n),
                   util::ConsoleTable::num(d_lhe4c / n)});
    csv.write_row({std::to_string(range), "global",
                   util::CsvWriter::num(d_global / n)});
    csv.write_row({std::to_string(range), "lhe2x2",
                   util::CsvWriter::num(d_lhe2 / n)});
    csv.write_row({std::to_string(range), "lhe4x4",
                   util::CsvWriter::num(d_lhe4 / n)});
    csv.write_row({std::to_string(range), "lhe4x4_clip2",
                   util::CsvWriter::num(d_lhe4c / n)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\nAll variants share the same backlight power at a given\n"
              "range; lower distortion therefore means 'free' quality.\n"
              "Unclipped LHE amplifies flat-region noise (distortion can\n"
              "exceed global GHE); the clip limit recovers most of it.\n"
              "A per-region programmable ladder would be needed to deploy\n"
              "LHE in the hardware path (DESIGN.md §4 hardware note).\n"
              "CSV: %s/lhe_ablation.csv\n",
              bench::results_dir().c_str());
  return 0;
}
