// Regenerates Figure 5 (and exercises Fig. 3): conventional versus
// hierarchical reference-voltage drivers.
//
// Shows (a) the conventional ladder's single-band limitation, (b) the
// hierarchical ladder realizing a multi-slope k-band HEBS transform via
// Eq. 10, and (c) realization error versus band count and DAC
// resolution — the hardware-cost trade of the proposed circuit.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "hebs/advanced/core.h"
#include "hebs/advanced/display.h"

int main() {
  using namespace hebs;
  bench::print_header("Figure 5 — reference voltage driver realization",
                      "Iranli et al., DATE'05, Fig. 5a/5b, Eq. 10");

  // A HEBS transform that needs multiple slopes.
  const auto img =
      image::make_usid(image::UsidId::kSplash, bench::kImageSize);
  const auto r = core::hebs_at_range(img, 120, {}, bench::platform());
  const double beta = r.point.beta;

  // Conventional circuit: best single-band approximation (clamp switches
  // only, single slope).
  const display::ConventionalLadder conventional(11);
  const auto single_band = conventional.clamped_transfer(0.05, 0.6);

  std::printf("HEBS transform for 'Splash' at range 120 (beta %.3f), "
              "m = %d segments.\n\n",
              beta, r.lambda.segment_count());

  // Sweep band count and DAC resolution; report realization RMS error.
  auto csv = bench::open_csv("fig5_ladder_error.csv");
  csv.write_row({"bands", "dac_bits", "rms_error", "max_error"});
  util::ConsoleTable table({"bands k", "DAC bits", "RMS error", "max error"});
  for (int bands : {2, 4, 8, 16, 32}) {
    for (int dac_bits : {6, 8, 10}) {
      display::HierarchicalLadderOptions opts;
      opts.bands = bands;
      opts.dac_bits = dac_bits;
      display::HierarchicalLadder ladder(opts);
      ladder.program(r.lambda, beta);
      const auto effective = ladder.effective_transform(beta);
      double sq = 0.0;
      double worst = 0.0;
      constexpr int kSamples = 256;
      for (int i = 0; i < kSamples; ++i) {
        const double x = static_cast<double>(i) / (kSamples - 1);
        const double err = std::abs(effective(x) - r.lambda(x));
        sq += err * err;
        worst = std::max(worst, err);
      }
      const double rms = std::sqrt(sq / kSamples);
      table.add_row({std::to_string(bands), std::to_string(dac_bits),
                     util::ConsoleTable::num(rms, 4),
                     util::ConsoleTable::num(worst, 4)});
      csv.write_row({std::to_string(bands), std::to_string(dac_bits),
                     util::CsvWriter::num(rms),
                     util::CsvWriter::num(worst)});
    }
  }
  std::printf("%s", table.to_string().c_str());

  // The conventional circuit's error on the same target, for contrast.
  double conv_sq = 0.0;
  for (int level = 0; level < 256; ++level) {
    const double x = level / 255.0;
    const double err =
        beta * single_band.transmittance(level) - r.lambda(x);
    conv_sq += err * err;
  }
  std::printf("\nConventional single-band circuit RMS error on the same\n"
              "transform: %.4f — the multi-slope k-band ladder is the\n"
              "enabler for HEBS (paper §4.1).\n"
              "CSV: %s/fig5_ladder_error.csv\n",
              std::sqrt(conv_sq / 256.0), bench::results_dir().c_str());
  return 0;
}
